"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import DataMessage, GossipMessage, MessageId
from repro.core.store import MessageStore
from repro.crypto import dsa
from repro.crypto.digest import digest_int, encode_fields
from repro.crypto.keystore import HmacScheme
from repro.fd.events import ANY, HeaderPattern
from repro.metrics.summary import percentile, summarize
from repro.radio.geometry import Area, Position

SMALL_PARAMS = dsa.generate_parameters(p_bits=256, q_bits=160, seed=b"prop")
SCHEME = HmacScheme(seed=b"prop")
SIGNERS = {i: SCHEME.register(i) for i in range(4)}

fields = st.one_of(
    st.integers(min_value=-2**64, max_value=2**64),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
)


@given(st.lists(fields, max_size=6), st.lists(fields, max_size=6))
def test_encode_fields_injective(a, b):
    """Distinct field tuples never share an encoding (no ambiguity).

    The encoding is deliberately type-aware (0 and False, 1 and 1.0 are
    different fields), so compare typed tuples.
    """
    typed_a = [(type(v), v) for v in a]
    typed_b = [(type(v), v) for v in b]
    if typed_a != typed_b:
        assert encode_fields(a) != encode_fields(b)
    else:
        assert encode_fields(a) == encode_fields(b)


@given(st.binary(max_size=64), st.integers(min_value=1, max_value=256))
def test_digest_int_within_bits(data, bits):
    assert 0 <= digest_int(data, bits) < (1 << bits)


@settings(max_examples=20, deadline=None)
@given(st.binary(max_size=128))
def test_dsa_roundtrip_random_messages(message):
    private, public = dsa.generate_keypair(SMALL_PARAMS, seed=b"prop-key")
    signature = dsa.sign(private, message)
    assert dsa.verify(public, message, signature)
    assert not dsa.verify(public, message + b"x", signature)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=3), st.binary(max_size=64),
       st.integers(min_value=1, max_value=1000))
def test_hmac_scheme_roundtrip_and_nonforgeability(node, message, seq):
    signer = SIGNERS[node]
    signature = signer.sign(message)
    assert SCHEME.verify(node, message, signature)
    other = (node + 1) % 4
    assert not SCHEME.verify(other, message, signature)


@given(st.dictionaries(st.sampled_from(["type", "originator", "seq"]),
                       st.integers(0, 5), min_size=1),
       st.dictionaries(st.sampled_from(["type", "originator", "seq"]),
                       st.integers(0, 5), min_size=1))
def test_header_pattern_exact_match_semantics(pattern_fields, header):
    pattern = HeaderPattern(**pattern_fields)
    expected = all(header.get(k, object()) == v
                   for k, v in pattern_fields.items())
    assert pattern.matches(header) == expected


@given(st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(0, 5),
                       min_size=1))
def test_header_pattern_wildcards_match_any_value(header):
    pattern = HeaderPattern(**{key: ANY for key in header})
    assert pattern.matches(header)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50)),
                max_size=40))
def test_store_accept_at_most_once(events):
    store = MessageStore()
    accepted = []
    for originator, seq in events:
        msg_id = MessageId(originator, seq)
        if store.mark_accepted(msg_id):
            accepted.append(msg_id)
    assert len(accepted) == len(set(accepted))
    for msg_id in accepted:
        assert store.was_accepted(msg_id)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=8))
def test_store_gossip_rotation_covers_everything(count, limit):
    store = MessageStore()
    signer = SIGNERS[0]
    for seq in range(count):
        store.add_message(DataMessage.create(signer, seq, b"x"), 0.0)
        store.add_gossip(GossipMessage.create(signer, seq))
        store.start_gossiping(MessageId(0, seq), 0.0)
    seen = set()
    rounds = math.ceil(count / limit) + 2
    for _ in range(rounds):
        batch = store.gossip_batch(limit)
        assert len(batch) <= limit
        seen.update(g.msg_id.seq for g in batch)
    assert seen == set(range(count))


@settings(max_examples=100)
@given(st.floats(-1000, 1000), st.floats(-1000, 1000),
       st.floats(1, 500), st.floats(1, 500))
def test_area_reflect_always_lands_inside(x, y, width, height):
    area = Area(width, height)
    assert area.contains(area.reflect(Position(x, y)))


@settings(max_examples=100)
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
       st.floats(0, 1))
def test_percentile_is_an_element_and_monotone(values, fraction):
    result = percentile(values, fraction)
    assert result in values
    assert percentile(values, 0.0) <= result <= percentile(values, 1.0)


@settings(max_examples=100)
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_summary_invariants(values):
    summary = summarize(values)
    tolerance = 1e-6 * (abs(summary.minimum) + abs(summary.maximum) + 1.0)
    assert summary.minimum <= summary.p50 <= summary.maximum
    assert summary.minimum - tolerance <= summary.mean \
        <= summary.maximum + tolerance
    assert summary.count == len(values)
