"""Checkpoint/resume equivalence suite.

The contract under test (see :mod:`repro.sim.checkpoint`): a run that is
snapshotted — and a run resumed from any such snapshot — produces a final
campaign record byte-identical to an uninterrupted run's, modulo the
record's config block (which carries the checkpoint settings themselves).
Covered here across both medium index implementations, with and without a
chaos schedule, at arbitrary interruption points, serially and across a
worker pool, plus the failure paths: stale format versions, corrupt
files, and a SIGTERM-killed campaign worker picked up by the next run.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.chaos import FaultEvent, FaultSchedule, OracleConfig
from repro.radio.medium import Medium
from repro.sim import (
    Campaign,
    CheckpointConfig,
    CheckpointError,
    ExperimentConfig,
    build_world,
    config_key,
    finish_world,
    latest_checkpoint,
    load_checkpoint,
    resume_experiment,
    run_experiment,
    result_to_record,
    write_checkpoint,
)
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_path,
    describe_checkpoint,
)
from repro.tracing import TraceRecorder
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

pytestmark = pytest.mark.checkpoint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: A short fault timeline exercising mid-run behaviour swaps around the
#: resume points used below.
SCHEDULE = FaultSchedule(events=(
    FaultEvent(time=1.0, node=3, action="mute"),
    FaultEvent(time=2.5, node=5, action="deaf"),
    FaultEvent(time=4.0, node=3, action="recover"),
))


def base_config(seed=3, chaos=None):
    return ExperimentConfig(
        scenario=ScenarioConfig(n=8, seed=seed,
                                adversaries=AdversaryMix.mute(1)),
        chaos=chaos, oracle=OracleConfig(),
        warmup=3.0, message_count=2, message_interval=1.5, drain=5.0)


def canonical(config, result):
    """The record a campaign would persist, minus the config block —
    the acceptance criterion's "byte-identical modulo config block" —
    and minus the wall-clock ``runtime`` block (host timing is never
    part of the determinism contract)."""
    record = result_to_record(config, result)
    record.pop("config")
    record.pop("runtime", None)
    return json.dumps(record, sort_keys=True)


def interrupt(config, at, directory):
    """Run a checkpointed config partway and abandon it — the simulated
    kill.  Returns the snapshot path."""
    world = build_world(config)
    world.sim.run(until=at)
    return write_checkpoint(world, config_key(config), directory)


# ----------------------------------------------------------------------
# Core equivalence
# ----------------------------------------------------------------------
def test_checkpoint_setting_does_not_change_config_key(tmp_path):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    assert config_key(ck) == config_key(config)


def test_uninterrupted_checkpointed_run_matches_plain(tmp_path):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.5, directory=str(tmp_path)))
    baseline = canonical(config, run_experiment(config))
    assert canonical(ck, run_experiment(ck)) == baseline
    # Completed runs leave no snapshot behind.
    assert latest_checkpoint(str(tmp_path), config_key(ck)) is None


# Interruption instants spanning the run: end of warmup, mid-workload,
# and deep into the drain (the horizon here is 9.5).
@pytest.mark.parametrize("at", [3.0, 4.7, 6.25, 9.4])
def test_resume_from_arbitrary_midpoint(tmp_path, at):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=2.0, directory=str(tmp_path)))
    baseline = canonical(config, run_experiment(config))
    interrupt(ck, at, str(tmp_path))
    # run_experiment auto-resumes from the leftover snapshot.
    assert canonical(ck, run_experiment(ck)) == baseline
    assert latest_checkpoint(str(tmp_path), config_key(ck)) is None


def test_resume_experiment_entry_point(tmp_path):
    config = base_config(seed=11)
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    baseline = canonical(config, run_experiment(config))
    path = interrupt(ck, 5.5, str(tmp_path))
    assert canonical(ck, resume_experiment(path)) == baseline


def test_resume_with_chaos_schedule(tmp_path):
    config = base_config(seed=5, chaos=SCHEDULE)
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    baseline_result = run_experiment(config)
    baseline = canonical(config, baseline_result)
    # Interrupt mid-timeline (between the deaf and recover faults).
    interrupt(ck, 6.0, str(tmp_path))
    resumed = run_experiment(ck)
    assert canonical(ck, resumed) == baseline
    assert resumed.chaos_events == baseline_result.chaos_events
    assert resumed.invariant_violations == 0


def test_resume_equivalence_on_both_media(tmp_path):
    config = base_config(seed=7)
    ck = replace(config, checkpoint=CheckpointConfig(
        every=2.5, directory=str(tmp_path)))
    outcomes = {}
    for use_grid in (True, False):
        saved = Medium.DEFAULT_USE_GRID
        Medium.DEFAULT_USE_GRID = use_grid
        try:
            baseline = canonical(config, run_experiment(config))
            interrupt(ck, 7.3, str(tmp_path))
            resumed = canonical(ck, run_experiment(ck))
        finally:
            Medium.DEFAULT_USE_GRID = saved
        assert resumed == baseline
        outcomes[use_grid] = resumed
    # The two index implementations also agree with each other.
    assert outcomes[True] == outcomes[False]


# ----------------------------------------------------------------------
# Campaign integration (workers=1 and workers=4)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 4])
def test_campaign_resumes_interrupted_worker(tmp_path, workers):
    configs = [base_config(seed=s) for s in (1, 2, 3, 4)]

    baseline = Campaign(str(tmp_path / "baseline"))
    baseline.run(configs)

    resumed = Campaign(str(tmp_path / "resumed"))
    ckpt_dir = os.path.join(resumed.directory, "checkpoints")
    # Simulate a worker killed mid-run on the first configuration: its
    # snapshot is sitting in the campaign's checkpoint directory.
    victim = replace(configs[0], checkpoint=CheckpointConfig(
        every=1.0, directory=ckpt_dir))
    interrupt(victim, 5.0, ckpt_dir)
    executed, skipped = resumed.run(configs, checkpoint_every=1.0,
                                    workers=workers)
    assert (executed, skipped) == (4, 0)

    base_records = {r["key"]: r for r in baseline.records()}
    for record in resumed.records():
        expected = dict(base_records[record["key"]])
        got = dict(record)
        expected.pop("config")
        got.pop("config")
        expected.pop("runtime", None)
        got.pop("runtime", None)
        assert got == expected
    # All snapshots cleaned up after their runs completed.
    assert not [name for name in os.listdir(ckpt_dir)
                if name.endswith(".ckpt")]


def test_campaign_skip_semantics_unchanged(tmp_path):
    config = base_config()
    campaign = Campaign(str(tmp_path))
    campaign.run([config], checkpoint_every=1.0)
    # The record key ignores checkpoint settings, so a plain re-run of
    # the same configuration is recognised as done.
    executed, skipped = campaign.run([config])
    assert (executed, skipped) == (0, 1)


# ----------------------------------------------------------------------
# Snapshot file format and failure paths
# ----------------------------------------------------------------------
def test_snapshot_manifest(tmp_path):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    path = interrupt(ck, 5.0, str(tmp_path))
    manifest = describe_checkpoint(path)
    assert manifest["version"] == CHECKPOINT_VERSION
    assert manifest["key"] == config_key(ck)
    assert manifest["sim_time"] == 5.0
    assert manifest["events_fired"] > 0
    assert "medium" in manifest["stream_names"]


def test_version_mismatch_is_refused_and_run_restarts(tmp_path):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    baseline = canonical(config, run_experiment(config))
    path = interrupt(ck, 5.0, str(tmp_path))
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    payload["version"] = CHECKPOINT_VERSION + 1
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    with pytest.raises(CheckpointError):
        load_checkpoint(path)
    # run_experiment treats the stale snapshot as absent and still
    # produces the right answer from a fresh start.
    assert canonical(ck, run_experiment(ck)) == baseline


def test_corrupt_snapshot_falls_back_to_fresh_run(tmp_path):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    baseline = canonical(config, run_experiment(config))
    path = checkpoint_path(str(tmp_path), config_key(ck))
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    with pytest.raises(CheckpointError):
        load_checkpoint(path)
    assert canonical(ck, run_experiment(ck)) == baseline


def test_wrong_config_snapshot_is_refused(tmp_path):
    config = base_config(seed=21)
    other = base_config(seed=22)
    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    path = interrupt(ck, 5.0, str(tmp_path))
    with pytest.raises(CheckpointError):
        load_checkpoint(path, expect_key=config_key(other))


def test_recorder_logs_checkpoints(tmp_path):
    config = base_config()
    ck = replace(config, checkpoint=CheckpointConfig(
        every=2.0, directory=str(tmp_path)))
    world = build_world(ck)
    world.recorder = TraceRecorder(world.sim, categories=("checkpoint",))
    finish_world(world)
    events = world.recorder.select(category="checkpoint")
    assert events
    assert all(event.node == -1 for event in events)
    # One event per boundary before the horizon, at increasing progress.
    fired = [event.details["events_fired"] for event in events]
    assert fired == sorted(fired)
    assert all(event.details["path"].endswith(".ckpt") for event in events)


# ----------------------------------------------------------------------
# Instruments ride inside the world: profiler and trace across a resume
# ----------------------------------------------------------------------
def interrupt_instrumented(config, at, directory):
    """Like :func:`interrupt`, but with the world's own instruments
    (profiler/observability) active during the slice — faithful to a real
    kill, which lands inside the instrumented ``finish_world`` loop."""
    from repro.sim.experiment import _instruments

    world = build_world(config)
    with _instruments(world.profiler, world.obs):
        world.sim.run(until=at)
    return write_checkpoint(world, config_key(config), directory)


def test_profiler_counts_survive_resume(tmp_path):
    """Regression: the profiler rides in the world, so a resumed run's
    phase *counts* match an uninterrupted run exactly (seconds are host
    wall-clock and excluded).  The wire cache is a process-global memo —
    its hit/miss split depends on what ran earlier in this process — so
    it is disabled for the comparison, as in the determinism suite."""
    from repro.core.config import ProtocolConfig
    from repro.core.node import NodeStackConfig

    config = replace(base_config(seed=9), profile=True,
                     stack=NodeStackConfig(
                         protocol=ProtocolConfig(wire_cache=False)))
    baseline = run_experiment(config).profile
    assert baseline, "profiled run must produce a profile"

    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    interrupt_instrumented(ck, 5.0, str(tmp_path))
    resumed = run_experiment(ck).profile
    assert {phase: stats["count"] for phase, stats in resumed.items()} == \
        {phase: stats["count"] for phase, stats in baseline.items()}


def test_observed_trace_survives_resume_byte_identical(tmp_path):
    """The observability payload — span stream, metric series, counters,
    meta — of a resumed run is byte-identical to an uninterrupted run's
    (span ids come from occurrence counters that checkpoint with the
    world, not from anything wall-clock)."""
    from repro.obs import ObsConfig

    config = replace(base_config(seed=13), observe=ObsConfig())
    baseline = run_experiment(config)
    assert baseline.trace is not None

    ck = replace(config, checkpoint=CheckpointConfig(
        every=1.0, directory=str(tmp_path)))
    interrupt_instrumented(ck, 6.0, str(tmp_path))
    resumed = run_experiment(ck)
    assert json.dumps(resumed.trace, sort_keys=True) == \
        json.dumps(baseline.trace, sort_keys=True)
    # And the full campaign record (metrics block included) matches.
    assert canonical(ck, resumed) == canonical(config, baseline)


def test_observe_setting_does_not_change_config_key(tmp_path):
    from repro.obs import ObsConfig

    config = base_config()
    assert config_key(replace(config, observe=ObsConfig())) == \
        config_key(config)


# ----------------------------------------------------------------------
# Real kill: SIGTERM a campaign worker, resume, compare
# ----------------------------------------------------------------------
def _kill_config():
    """The configuration the subprocess kill test runs (importable from
    the child process, which must build the identical config)."""
    return base_config(seed=17)


_CHILD_SCRIPT = """
import sys, time
from repro.des import kernel

_orig_step = kernel.Simulator.step
def _slow_step(self):
    time.sleep(0.002)   # wall-clock drag only: no RNG, no virtual time
    return _orig_step(self)
kernel.Simulator.step = _slow_step

from repro.sim import Campaign
from tests.test_checkpoint_resume import _kill_config

Campaign(sys.argv[1]).run([_kill_config()], checkpoint_every=1.0)
"""


def test_sigterm_killed_worker_resumes_identically(tmp_path):
    """The CI scenario: a campaign worker dies to SIGTERM mid-run; the
    next campaign invocation resumes from its snapshot and the final
    record matches an uninterrupted baseline byte for byte (modulo the
    config block)."""
    config = _kill_config()
    campaign_dir = str(tmp_path / "campaign")
    ckpt = checkpoint_path(os.path.join(campaign_dir, "checkpoints"),
                           config_key(config))

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, campaign_dir],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        deadline = time.monotonic() + 120.0
        while not os.path.exists(ckpt):
            if child.poll() is not None:
                out, err = child.communicate()
                raise AssertionError(
                    "worker finished before writing a checkpoint "
                    f"(slow-step drag too small?)\nstdout: {out!r}\n"
                    f"stderr: {err!r}")
            assert time.monotonic() < deadline, \
                "no checkpoint appeared within the deadline"
            time.sleep(0.02)
        child.send_signal(signal.SIGTERM)
        child.wait(timeout=30.0)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()

    campaign = Campaign(campaign_dir)
    assert os.path.exists(ckpt), "kill left no snapshot to resume from"
    assert not campaign.records(), "killed worker must not have a record"

    # Resume (in-process, full speed) and compare to an uninterrupted run.
    executed, skipped = campaign.run([config], checkpoint_every=1.0)
    assert (executed, skipped) == (1, 0)

    baseline = result_to_record(config, run_experiment(config))
    baseline.pop("config")
    baseline.pop("runtime", None)
    (record,) = campaign.records()
    record.pop("config")
    record.pop("runtime", None)
    assert record == baseline
    assert not os.path.exists(ckpt)   # consumed on completion
