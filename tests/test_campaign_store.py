"""Regression tests for the hardened campaign result store.

Each class pins one of the store bugs fixed for the campaign service:
corrupt records crashing every reader, ``force=True`` double-running
duplicate configs inside one call, the parallel runner reporting
``executed`` counts it never verified, and ``parallel_map`` silently
ignoring ``workers`` when handed a ``pool``.
"""

import json
import multiprocessing
import os

import pytest

from repro.sim.campaign import (
    Campaign,
    CampaignError,
    config_key,
    parallel_map,
)
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import ScenarioConfig

FAST = dict(message_count=1, message_interval=1.0, warmup=4.0, drain=6.0)


def fast_config(seed=1, n=8):
    return ExperimentConfig(scenario=ScenarioConfig(n=n, seed=seed),
                            **FAST)


def record_files(directory):
    return sorted(name for name in os.listdir(directory)
                  if name.endswith(".json"))


# ----------------------------------------------------------------------
# Corrupt records: skip-and-quarantine, never crash
# ----------------------------------------------------------------------
class TestCorruptRecordQuarantine:
    def _plant_corrupt(self, campaign, key="00deadbeef000000",
                       payload='{"key": "truncated...'):
        path = os.path.join(campaign.directory, f"{key}.json")
        with open(path, "w") as handle:
            handle.write(payload)
        return path

    def test_records_skips_and_quarantines_corrupt_file(self, tmp_path):
        campaign = Campaign(str(tmp_path))
        good = os.path.join(campaign.directory, "fffe000000000000.json")
        with open(good, "w") as handle:
            json.dump({"key": "fffe000000000000", "protocol": "byzcast"},
                      handle)
        corrupt = self._plant_corrupt(campaign)
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            records = campaign.records()
        assert [r["key"] for r in records] == ["fffe000000000000"]
        assert not os.path.exists(corrupt)
        assert os.path.exists(corrupt + ".corrupt")
        # A second pass is clean: the corpse no longer matches *.json.
        assert [r["key"] for r in campaign.records()] \
            == ["fffe000000000000"]

    def test_load_quarantines_and_returns_none(self, tmp_path):
        campaign = Campaign(str(tmp_path))
        config = fast_config()
        key = config_key(config)
        corrupt = self._plant_corrupt(campaign, key=key)
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert campaign.load(config) is None
        assert os.path.exists(corrupt + ".corrupt")
        assert campaign.load_key(key) is None     # quarantined == absent

    def test_quarantined_config_is_recomputed(self, tmp_path):
        campaign = Campaign(str(tmp_path))
        config = fast_config()
        assert campaign.run([config]) == (1, 0)
        path = os.path.join(campaign.directory,
                            f"{config_key(config)}.json")
        with open(path, "w") as handle:
            handle.write("not json at all")
        with pytest.warns(RuntimeWarning):
            assert campaign.load(config) is None
        # The record is gone from the store, so the next run redoes it
        # and the reloaded record is whole again.
        assert campaign.run([config]) == (1, 0)
        assert campaign.load(config)["key"] == config_key(config)

    def test_empty_record_file_is_quarantined(self, tmp_path):
        campaign = Campaign(str(tmp_path))
        corrupt = self._plant_corrupt(campaign, payload="")
        with pytest.warns(RuntimeWarning):
            assert campaign.records() == []
        assert os.path.exists(corrupt + ".corrupt")


# ----------------------------------------------------------------------
# force=True must not double-run duplicates within one call
# ----------------------------------------------------------------------
class TestForceDedupesWithinCall:
    def test_duplicate_configs_run_once_under_force(self, tmp_path):
        campaign = Campaign(str(tmp_path))
        config = fast_config()
        executed, skipped = campaign.run([config, config], force=True)
        assert (executed, skipped) == (1, 1)
        assert record_files(campaign.directory) \
            == [f"{config_key(config)}.json"]

    def test_duplicate_configs_run_once_under_force_parallel(self,
                                                             tmp_path):
        campaign = Campaign(str(tmp_path))
        configs = [fast_config(seed=1), fast_config(seed=1),
                   fast_config(seed=2)]
        executed, skipped = campaign.run(configs, force=True, workers=2)
        assert (executed, skipped) == (2, 1)

    def test_force_still_reruns_persisted_records(self, tmp_path):
        campaign = Campaign(str(tmp_path))
        config = fast_config()
        assert campaign.run([config]) == (1, 0)
        assert campaign.run([config], force=True) == (1, 0)


# ----------------------------------------------------------------------
# executed must count records actually written
# ----------------------------------------------------------------------
from repro.sim.campaign import _run_record as _real_run_record


def _fail_on_seed_2(task):
    """Worker body that dies on the marked config (module-level so it
    pickles into pool workers; binds the unpatched runner)."""
    key, config = task
    if config.scenario.seed == 2:
        raise RuntimeError("worker exploded on seed 2")
    return _real_run_record(task)


class TestExecutedCountsPersistedRecords:
    def test_serial_failure_surfaces_with_partial_count(self, tmp_path,
                                                        monkeypatch):
        import repro.sim.campaign as campaign_module
        real = campaign_module.run_experiment

        def flaky(config):
            if config.scenario.seed == 2:
                raise RuntimeError("boom")
            return real(config)

        monkeypatch.setattr(campaign_module, "run_experiment", flaky)
        campaign = Campaign(str(tmp_path))
        configs = [fast_config(seed=1), fast_config(seed=2),
                   fast_config(seed=3)]
        with pytest.raises(CampaignError) as excinfo:
            campaign.run(configs)
        assert excinfo.value.executed == 1
        assert len(record_files(campaign.directory)) == 1
        # Resume picks up the remainder once the fault is gone.
        monkeypatch.setattr(campaign_module, "run_experiment", real)
        assert campaign.run(configs) == (2, 1)

    def test_parallel_failure_counts_only_written_records(self, tmp_path,
                                                          monkeypatch):
        import repro.sim.campaign as campaign_module
        monkeypatch.setattr(campaign_module, "_run_record",
                            _fail_on_seed_2)
        campaign = Campaign(str(tmp_path))
        configs = [fast_config(seed=1), fast_config(seed=2),
                   fast_config(seed=3)]
        with pytest.raises(CampaignError) as excinfo:
            campaign.run(configs, workers=2)
        # Results stream back in task order: seed 1 landed before the
        # seed-2 explosion, so exactly one record is on disk and the
        # error's count matches the directory — not len(pending).
        assert excinfo.value.executed == 1
        assert len(record_files(campaign.directory)) \
            == excinfo.value.executed

    def test_error_carries_skipped_count(self, tmp_path, monkeypatch):
        import repro.sim.campaign as campaign_module
        campaign = Campaign(str(tmp_path))
        done = fast_config(seed=5)
        assert campaign.run([done]) == (1, 0)

        def always_fail(config):
            raise RuntimeError("boom")

        monkeypatch.setattr(campaign_module, "run_experiment",
                            always_fail)
        with pytest.raises(CampaignError) as excinfo:
            campaign.run([done, fast_config(seed=6)])
        assert excinfo.value.skipped == 1
        assert excinfo.value.executed == 0


# ----------------------------------------------------------------------
# parallel_map argument contract
# ----------------------------------------------------------------------
def _double(value):
    return value * 2


class TestParallelMapContract:
    def test_pool_with_workers_is_rejected(self):
        with multiprocessing.Pool(processes=2) as pool:
            with pytest.raises(ValueError, match="not both"):
                parallel_map(_double, [1, 2, 3], workers=4, pool=pool)

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            parallel_map(_double, [1], workers=0)

    def test_pooled_path_streams_in_task_order(self):
        seen = []
        with multiprocessing.Pool(processes=2) as pool:
            results = parallel_map(
                _double, list(range(8)), pool=pool,
                on_result=lambda task, result: seen.append((task,
                                                            result)))
        assert results == [i * 2 for i in range(8)]
        assert seen == [(i, i * 2) for i in range(8)]

    def test_owned_pool_path_streams_in_task_order(self):
        seen = []
        results = parallel_map(
            _double, list(range(8)), workers=2,
            on_result=lambda task, result: seen.append((task, result)))
        assert results == [i * 2 for i in range(8)]
        assert seen == [(i, i * 2) for i in range(8)]

    def test_serial_path_matches(self):
        assert parallel_map(_double, [3, 4]) == [6, 8]
