"""``repro bench compare`` — the perf-regression sentinel.

The acceptance criterion under test: a planted >= 20% slowdown in a
pytest-benchmark artifact is detected and exits non-zero; noise inside
the band stays green.
"""

import io
import json

import pytest

from repro.cli import main
from repro.telemetry.bench import (
    BenchCompareError,
    compare_artifacts,
    format_report,
    load_artifact,
)


def artifact(tmp_path, name, stats_by_test):
    """Write a minimal pytest-benchmark --benchmark-json artifact."""
    payload = {"benchmarks": [
        {"fullname": fullname, "name": fullname.split("::")[-1],
         "stats": stats}
        for fullname, stats in stats_by_test.items()
    ]}
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


STATS_FAST = {"min": 0.100, "max": 0.140, "mean": 0.110,
              "median": 0.108, "stddev": 0.01, "iqr": 0.008, "ops": 9.1}
STATS_SLOW = {"min": 0.150, "max": 0.210, "mean": 0.165,
              "median": 0.162, "stddev": 0.015, "iqr": 0.012, "ops": 6.1}
STATS_NOISE = {"min": 0.105, "max": 0.150, "mean": 0.116,
               "median": 0.113, "stddev": 0.011, "iqr": 0.009, "ops": 8.7}


class TestLoadArtifact:
    def test_round_trip(self, tmp_path):
        path = artifact(tmp_path, "b.json", {"bench.py::test_x": STATS_FAST})
        assert load_artifact(path) == {"bench.py::test_x": STATS_FAST}

    def test_missing_file(self):
        with pytest.raises(BenchCompareError):
            load_artifact("/nonexistent/bench.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(BenchCompareError):
            load_artifact(str(path))

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(BenchCompareError):
            load_artifact(str(path))


class TestCompare:
    def test_planted_regression_detected(self):
        (row,) = compare_artifacts({"t": STATS_FAST}, {"t": STATS_SLOW},
                                   threshold_pct=20.0)
        assert row["status"] == "regression"
        assert row["change_pct"] == pytest.approx(50.0)

    def test_noise_within_band_is_ok(self):
        (row,) = compare_artifacts({"t": STATS_FAST}, {"t": STATS_NOISE},
                                   threshold_pct=20.0)
        assert row["status"] == "ok"

    def test_improvement_flagged(self):
        (row,) = compare_artifacts({"t": STATS_SLOW}, {"t": STATS_FAST},
                                   threshold_pct=20.0)
        assert row["status"] == "improvement"

    def test_ops_metric_inverts_direction(self):
        # ops dropped 9.1 -> 6.1: a slowdown, so a regression even
        # though the raw number went *down*.
        (row,) = compare_artifacts({"t": STATS_FAST}, {"t": STATS_SLOW},
                                   threshold_pct=20.0, metric="ops")
        assert row["status"] == "regression"
        assert row["change_pct"] > 20.0

    def test_non_overlapping_tests_reported(self):
        rows = compare_artifacts(
            {"shared": STATS_FAST, "gone": STATS_FAST},
            {"shared": STATS_FAST, "new": STATS_FAST})
        by_name = {row["name"]: row["status"] for row in rows}
        assert by_name == {"shared": "ok", "gone": "baseline-only",
                           "new": "current-only"}

    def test_disjoint_artifacts_raise(self):
        with pytest.raises(BenchCompareError):
            compare_artifacts({"a": STATS_FAST}, {"b": STATS_FAST})

    def test_unknown_metric_rejected(self):
        with pytest.raises(BenchCompareError):
            compare_artifacts({"t": STATS_FAST}, {"t": STATS_FAST},
                              metric="vibes")

    def test_missing_stat_rejected(self):
        with pytest.raises(BenchCompareError):
            compare_artifacts({"t": {"mean": 1.0}}, {"t": {"mean": 1.0}},
                              metric="min")

    def test_zero_baseline_edge(self):
        (row,) = compare_artifacts({"t": {"min": 0.0}},
                                   {"t": {"min": 0.1}})
        assert row["status"] == "regression"


class TestFormatReport:
    def test_report_has_verdict_line(self):
        rows = compare_artifacts({"t": STATS_FAST}, {"t": STATS_SLOW})
        report = format_report(rows, threshold_pct=20.0)
        assert "regression" in report
        assert "1 regression(s)" in report


class TestCli:
    def run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_regression_exits_nonzero(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"t": STATS_FAST})
        cur = artifact(tmp_path, "cur.json", {"t": STATS_SLOW})
        code, output = self.run(["bench", "compare", base, cur])
        assert code == 1
        assert "regression" in output

    def test_clean_compare_exits_zero(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"t": STATS_FAST})
        cur = artifact(tmp_path, "cur.json", {"t": STATS_NOISE})
        code, output = self.run(["bench", "compare", base, cur])
        assert code == 0
        assert "0 regression(s)" in output

    def test_warn_only_downgrades_exit(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"t": STATS_FAST})
        cur = artifact(tmp_path, "cur.json", {"t": STATS_SLOW})
        code, output = self.run(["bench", "compare", base, cur,
                                 "--warn-only"])
        assert code == 0
        assert "warn-only" in output

    def test_threshold_flag_moves_the_band(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"t": STATS_FAST})
        cur = artifact(tmp_path, "cur.json", {"t": STATS_SLOW})
        code, _ = self.run(["bench", "compare", base, cur,
                            "--threshold", "80"])
        assert code == 0

    def test_broken_artifact_exits_two(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"t": STATS_FAST})
        code, output = self.run(["bench", "compare", base,
                                 str(tmp_path / "missing.json")])
        assert code == 2
        assert "bench compare failed" in output
