"""Unit tests for adversary behaviours and active attackers."""

import pytest

from repro.adversary.behaviors import (
    DeafBehavior,
    ForgingBehavior,
    GossipLiarBehavior,
    ImpersonationBehavior,
    MuteBehavior,
    PROTOCOL_KINDS,
    SelectiveDropBehavior,
)
from repro.adversary.policies import (
    BEHAVIOR_KINDS,
    GossipFloodAttacker,
    RequestFloodAttacker,
    make_behavior,
)
from repro.core.messages import (
    DATA,
    FIND_MISSING_MSG,
    GOSSIP,
    REQUEST_MSG,
    DataMessage,
)
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.random import RandomStream


@pytest.fixture
def message():
    directory = KeyDirectory(HmacScheme(seed=b"adv"))
    signer = directory.issue(1)
    return DataMessage.create(signer, 1, b"original payload"), directory


class TestMuteBehavior:
    def test_drops_all_protocol_kinds(self, message):
        msg, _ = message
        behavior = MuteBehavior()
        for kind in PROTOCOL_KINDS:
            assert behavior.filter_outgoing(kind, msg) is None

    def test_other_kinds_pass(self, message):
        msg, _ = message
        behavior = MuteBehavior(drop_kinds=[DATA])
        assert behavior.filter_outgoing(GOSSIP, msg) is msg
        assert behavior.filter_outgoing(DATA, msg) is None


class TestSelectiveDrop:
    def test_probability_zero_never_drops(self, message):
        msg, _ = message
        behavior = SelectiveDropBehavior(RandomStream(1), 0.0)
        assert all(behavior.filter_outgoing(DATA, msg) is msg
                   for _ in range(50))

    def test_probability_one_always_drops(self, message):
        msg, _ = message
        behavior = SelectiveDropBehavior(RandomStream(1), 1.0)
        assert all(behavior.filter_outgoing(DATA, msg) is None
                   for _ in range(50))

    def test_only_listed_kinds_dropped(self, message):
        msg, _ = message
        behavior = SelectiveDropBehavior(RandomStream(1), 1.0,
                                         drop_kinds=[DATA])
        assert behavior.filter_outgoing(GOSSIP, msg) is msg

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            SelectiveDropBehavior(RandomStream(1), 1.5)


class TestForging:
    def test_corrupted_payload_fails_verification(self, message):
        msg, directory = message
        behavior = ForgingBehavior(RandomStream(1), corrupt_probability=1.0)
        forged = behavior.filter_outgoing(DATA, msg)
        assert forged is not None
        assert forged.payload != msg.payload
        assert not forged.verify(directory)

    def test_signature_and_id_preserved(self, message):
        msg, _ = message
        behavior = ForgingBehavior(RandomStream(1), corrupt_probability=1.0)
        forged = behavior.filter_outgoing(DATA, msg)
        assert forged.msg_id == msg.msg_id
        assert forged.signature == msg.signature

    def test_non_data_untouched(self, message):
        msg, _ = message
        behavior = ForgingBehavior(RandomStream(1))
        assert behavior.filter_outgoing(GOSSIP, "gossip") == "gossip"


class TestImpersonation:
    def test_originator_rewritten_and_rejected(self, message):
        msg, directory = message
        behavior = ImpersonationBehavior(victim_id=9)
        forged = behavior.filter_outgoing(DATA, msg)
        assert forged.msg_id.originator == 9
        assert not forged.verify(directory)


class TestLiarAndDeaf:
    def test_liar_gossips_but_never_serves(self, message):
        msg, _ = message
        behavior = GossipLiarBehavior()
        assert behavior.filter_outgoing(GOSSIP, "g") == "g"
        assert behavior.filter_outgoing(REQUEST_MSG, "r") == "r"
        assert behavior.filter_outgoing(DATA, msg) is None
        assert behavior.filter_outgoing(FIND_MISSING_MSG, "f") is None

    def test_deaf_suppresses_all_incoming(self, message):
        msg, _ = message
        behavior = DeafBehavior()
        for kind in PROTOCOL_KINDS:
            assert behavior.intercept_incoming(kind, msg, 5)
        assert behavior.filter_outgoing(DATA, msg) is msg


class TestFactory:
    def test_correct_returns_none(self):
        assert make_behavior("correct") is None

    def test_all_kinds_constructible(self):
        rng = RandomStream(1)
        for kind in BEHAVIOR_KINDS:
            if kind == "correct":
                continue
            kwargs = {}
            if kind == "selective_drop":
                kwargs = {"drop_probability": 0.5}
            if kind == "impersonation":
                kwargs = {"victim_id": 3}
            behavior = make_behavior(kind, rng, **kwargs)
            assert behavior is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_behavior("chaotic_evil")

    def test_rng_required_where_needed(self):
        with pytest.raises(ValueError):
            make_behavior("forging")


class TestActiveAttackers:
    def build_victim_network(self):
        from tests.helpers import build_network, line_coords
        return build_network(line_coords(3, 80.0), 100.0)

    def test_request_flood_attacker_injects(self):
        sim, medium, nodes, _ = self.build_victim_network()
        attacker = RequestFloodAttacker(sim, nodes[2], RandomStream(3),
                                        rate_hz=10.0)
        sim.run(until=8.0)
        nodes[0].broadcast(b"bait")
        attacker.start()
        sim.run(until=sim.now + 10.0)
        assert attacker.requests_injected > 20
        attacker.stop()

    def test_request_flooder_gets_verbose_suspected(self):
        sim, medium, nodes, _ = self.build_victim_network()
        attacker = RequestFloodAttacker(sim, nodes[2], RandomStream(3),
                                        rate_hz=10.0)
        sim.run(until=8.0)
        nodes[0].broadcast(b"bait")
        attacker.start()
        sim.run(until=sim.now + 20.0)
        assert any(n.verbose.suspected(2) for n in nodes[:2])

    def test_gossip_flood_attacker_triggers_rate_policing(self):
        sim, medium, nodes, _ = self.build_victim_network()
        attacker = GossipFloodAttacker(sim, nodes[2], RandomStream(3),
                                       rate_hz=20.0)
        sim.run(until=8.0)
        nodes[0].broadcast(b"bait")
        sim.run(until=sim.now + 3.0)  # let the bait spread
        attacker.start()
        sim.run(until=sim.now + 10.0)
        assert attacker.packets_injected > 0
        assert any(n.verbose.suspected(2) for n in nodes[:2])

    def test_invalid_rate_rejected(self):
        sim, medium, nodes, _ = self.build_victim_network()
        with pytest.raises(ValueError):
            RequestFloodAttacker(sim, nodes[2], RandomStream(1), rate_hz=0)
        with pytest.raises(ValueError):
            GossipFloodAttacker(sim, nodes[2], RandomStream(1), rate_hz=0)
