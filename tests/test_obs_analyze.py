"""Analyzer tests: causal paths, latency bounds, timelines.

Two layers: hand-built synthetic traces pin the reconstruction rules
down exactly, then a real E13-style experiment (the paper's mute-onset
scenario) proves the acceptance claim — ``trace_path`` reconstructs the
full causal hop chain for a *delivered* message AND the evidence trail
(behavior-suppressed send, purge) for an *undelivered* one.
"""

import pytest

from repro.chaos import FaultEvent, FaultSchedule, OracleConfig
from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.obs import (
    ObsConfig,
    causal_chain,
    latency_report,
    message_ids,
    parse_msg,
    timeline,
    trace_path,
)
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.scenarios import ScenarioConfig
from repro.workloads.sources import BroadcastEvent

pytestmark = pytest.mark.obs


def span(seq, time, phase, node, msg=None, **detail):
    out = {"seq": seq, "span": f"{msg or '-'}/{node}/{seq}", "time": time,
           "phase": phase, "node": node, "msg": msg, "duration": 0.0}
    out.update(detail)
    return out


#: origin 0 → deliver 1 (from 0) → deliver 2 (from 1); node 3 only heard
#: gossip and requested; node 4 suppressed a duplicate; purge at node 0.
SYNTHETIC = [
    span(1, 0.0, "origin", 0, "0:1"),
    span(2, 0.0, "sign", 0, "0:1"),
    span(3, 0.2, "deliver", 1, "0:1", sender=0),
    span(4, 0.5, "deliver", 2, "0:1", sender=1),
    span(5, 0.6, "request", 3, "0:1"),
    span(6, 0.7, "suppress", 4, "0:1", reason="duplicate"),
    span(7, 9.0, "purge", 0, "0:1", reason="timeout"),
]


class TestParse:
    def test_parse_msg(self):
        assert parse_msg("3:12") == "3:12"
        with pytest.raises(ValueError):
            parse_msg("nonsense")
        with pytest.raises(ValueError):
            parse_msg("1:2:3")

    def test_message_ids_sort_numerically(self):
        spans = [span(1, 0.0, "origin", 0, "10:2"),
                 span(2, 0.0, "origin", 0, "2:1"),
                 span(3, 0.0, "tx", 0)]
        assert message_ids(spans) == ["2:1", "10:2"]


class TestTracePath:
    def test_hop_chain_with_depths(self):
        path = trace_path(SYNTHETIC, "0:1")
        assert path["origin"]["node"] == 0
        assert [(h["node"], h["sender"], h["depth"])
                for h in path["deliveries"]] == [(1, 0, 1), (2, 1, 2)]
        assert all(h["span"] for h in path["deliveries"])

    def test_per_node_outcomes(self):
        nodes = trace_path(SYNTHETIC, "0:1")["nodes"]
        assert nodes[0]["outcome"] == "origin"
        assert nodes[1]["outcome"] == "delivered"
        assert nodes[2]["outcome"] == "delivered"
        assert nodes[3]["outcome"] == "requested"
        assert nodes[4]["outcome"] == "suppressed"
        assert nodes[4]["reason"] == "duplicate"
        assert nodes[0]["purged_at"] == 9.0

    def test_purges_and_events_ordered(self):
        path = trace_path(SYNTHETIC, "0:1")
        assert [p["node"] for p in path["purges"]] == [0]
        times = [e["time"] for e in path["events"]]
        assert times == sorted(times)

    def test_unknown_message_is_empty_story(self):
        path = trace_path(SYNTHETIC, "9:9")
        assert path["origin"] is None
        assert path["deliveries"] == []
        assert path["nodes"] == {}


class TestCausalChain:
    def test_walks_back_to_origin(self):
        chain = causal_chain(SYNTHETIC, "0:1", 2)
        nodes_in_order = [s["node"] for s in chain]
        # Origin spans first, then hop 1, then hop 2.
        assert nodes_in_order == [0, 0, 0, 1, 2]
        assert chain[0]["phase"] == "origin"
        assert chain[-1]["phase"] == "deliver"

    def test_never_delivered_node_gets_own_evidence(self):
        chain = causal_chain(SYNTHETIC, "0:1", 3)
        assert [s["phase"] for s in chain] == ["request"]


class TestLatencyReport:
    def test_stats_and_buckets(self):
        report = latency_report(SYNTHETIC)
        assert report["count"] == 2
        assert report["messages"] == 1
        assert report["min"] == pytest.approx(0.2)
        assert report["max"] == pytest.approx(0.5)
        assert report["mean"] == pytest.approx(0.35)
        assert sum(count for _, count in report["buckets"]) == 2
        assert report["violations"] == []

    def test_bound_violations_carry_span_pointer(self):
        report = latency_report(SYNTHETIC, bound=0.3)
        assert report["bound"] == 0.3
        (violation,) = report["violations"]
        assert violation["node"] == 2
        assert violation["latency"] == pytest.approx(0.5)
        assert violation["span"] == "0:1/2/4"


class TestTimeline:
    def test_summary_per_node(self):
        nodes = timeline(SYNTHETIC)["nodes"]
        assert nodes[0]["count"] == 3
        assert nodes[0]["phases"] == {"origin": 1, "sign": 1, "purge": 1}
        assert nodes[0]["first"] == 0.0 and nodes[0]["last"] == 9.0

    def test_node_filter_returns_ordered_events(self):
        result = timeline(SYNTHETIC, node=0)
        assert [e["phase"] for e in result["events"]] == \
            ["origin", "sign", "purge"]


# ----------------------------------------------------------------------
# E13-style integration: a source that goes mute mid-run.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mute_trace():
    """One broadcast before the source is muted, one after.

    The second broadcast is originated and signed but its send is
    suppressed by the mute behavior, so it is never transmitted and its
    buffer entry can only leave via the purge timeout.
    """
    config = ExperimentConfig(
        scenario=ScenarioConfig(n=8, seed=5),
        stack=NodeStackConfig(protocol=ProtocolConfig(purge_timeout=4.0)),
        warmup=4.0,
        workload=[BroadcastEvent(time=0.5, source=0),
                  BroadcastEvent(time=3.0, source=0)],
        chaos=FaultSchedule(events=(
            FaultEvent(time=1.5, node=0, action="mute"),)),
        oracle=OracleConfig(),
        drain=10.0,
        observe=ObsConfig(),
    )
    result = run_experiment(config)
    assert result.trace is not None
    assert result.invariant_violations == 0
    return result.trace["spans"]


class TestMuteScenario:
    def test_delivered_message_has_full_hop_chain(self, mute_trace):
        path = trace_path(mute_trace, "0:1")
        assert path["origin"] is not None and path["origin"]["node"] == 0
        # The pre-mute broadcast reaches every other node.
        delivered = {h["node"] for h in path["deliveries"]}
        assert delivered == set(range(1, 8))
        assert all(h["depth"] >= 1 and h["span"] for h in path["deliveries"])
        # Every hop's causal chain walks back to the origin span.
        farthest = max(path["deliveries"], key=lambda h: h["depth"])
        chain = causal_chain(mute_trace, "0:1", farthest["node"])
        assert chain[0]["phase"] == "origin" and chain[0]["node"] == 0
        assert chain[-1]["node"] == farthest["node"]

    def test_undelivered_message_story_ends_in_purge(self, mute_trace):
        path = trace_path(mute_trace, "0:2")
        # Originated and signed at the (now mute) source...
        assert path["origin"] is not None and path["origin"]["node"] == 0
        phases = [e["phase"] for e in path["events"] if e["node"] == 0]
        assert "sign" in phases
        # ...but the send was behavior-suppressed: nobody delivered.
        suppressions = [e for e in path["events"]
                        if e["phase"] == "suppress" and e["node"] == 0]
        assert any(e.get("reason") == "behavior" for e in suppressions)
        assert path["deliveries"] == []
        # The buffer entry could only leave via the purge timeout.
        assert any(p["node"] == 0 and p.get("reason") == "timeout"
                   for p in path["purges"])
        assert path["nodes"][0].get("purged_at") is not None

    def test_latency_report_only_counts_the_delivered_message(
            self, mute_trace):
        report = latency_report(mute_trace, bound=60.0)
        assert report["messages"] == 2      # both have origin spans
        assert report["count"] == 7         # only 0:1 produced deliveries
        assert {row["msg"] for row in report["violations"]} == set()
