"""Unit tests for the observability core: spans, ids, registry, sampler.

Covers the two load-bearing properties of :mod:`repro.obs.context` —
deterministic span identity and zero cost when disabled — plus the
metric registry containers and payload merging used by sweeps.
"""

import pickle

import pytest

from repro.des.kernel import Simulator
from repro.obs import (
    PHASES,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ObsConfig,
    ObsContext,
    active,
    merge_payloads,
    msg_key,
    msg_of,
    session,
    span_id,
)
from repro.obs import context as obs_context

pytestmark = pytest.mark.obs


def make_context(**overrides):
    sim = Simulator()
    ctx = ObsContext(ObsConfig(**overrides), sim=sim)
    return sim, ctx


class TestIdentity:
    def test_msg_key_renders_originator_seq(self):
        assert msg_key((3, 7)) == "3:7"
        assert msg_key(None) is None

    def test_span_id_shape(self):
        assert span_id((3, 7), 5, 2) == "3:7/5/2"
        assert span_id(None, 5, 1) == "-/5/1"

    def test_msg_of_duck_types_the_message_family(self):
        class Data:
            msg_id = (2, 9)

        class Gossip:
            msg_id = (4, 1)

        class Request:
            gossip = Gossip()

        assert msg_of(Data()) == (2, 9)
        assert msg_of(Request()) == (4, 1)
        assert msg_of(object()) is None

    def test_occurrence_counter_is_per_message_and_node(self):
        _, ctx = make_context()
        first = ctx.span("rx", 1, msg=(0, 1))
        second = ctx.span("verify", 1, msg=(0, 1))
        other_node = ctx.span("rx", 2, msg=(0, 1))
        other_msg = ctx.span("rx", 1, msg=(0, 2))
        assert first == "0:1/1/1"
        assert second == "0:1/1/2"
        assert other_node == "0:1/2/1"
        assert other_msg == "0:2/1/1"

    def test_same_inputs_same_ids_across_contexts(self):
        ids = []
        for _ in range(2):
            _, ctx = make_context()
            ids.append([ctx.span("rx", 1, msg=(0, 1)),
                        ctx.span("deliver", 1, msg=(0, 1)),
                        ctx.span("tx", 2)])
        assert ids[0] == ids[1]


class TestRecording:
    def test_span_records_time_and_detail(self):
        sim, ctx = make_context()
        sim.schedule(1.25, lambda: ctx.span("rx", 3, msg=(0, 1), sender=7))
        sim.run()
        (span,) = ctx.spans
        assert span.time == 1.25
        assert span.phase == "rx"
        assert span.detail == {"sender": 7}
        assert span.to_dict()["msg"] == "0:1"

    def test_seq_gives_total_order_under_time_ties(self):
        _, ctx = make_context()
        for _ in range(5):
            ctx.span("rx", 1, msg=(0, 1))
        seqs = [span.seq for span in ctx.spans]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_capacity_counts_drops_but_keeps_ids_flowing(self):
        _, ctx = make_context(capacity=2)
        ids = [ctx.span("rx", 1, msg=(0, 1)) for _ in range(4)]
        assert len(ctx.spans) == 2
        assert ctx.dropped == 2
        # Occurrence counters advance past capacity, so ids stay unique
        # and deterministic even for the dropped spans.
        assert ids == ["0:1/1/1", "0:1/1/2", "0:1/1/3", "0:1/1/4"]

    def test_phase_filter(self):
        _, ctx = make_context(phases=("deliver",))
        assert ctx.span("rx", 1, msg=(0, 1)) is None
        assert ctx.span("deliver", 1, msg=(0, 1)) is not None
        assert [s.phase for s in ctx.spans] == ["deliver"]

    def test_unknown_phase_in_config_rejected(self):
        with pytest.raises(ValueError):
            ObsConfig(phases=("teleport",))

    def test_spans_off_records_nothing(self):
        _, ctx = make_context(spans=False)
        assert ctx.span("rx", 1, msg=(0, 1)) is None
        assert not ctx.spans

    def test_phase_counters_accumulate(self):
        _, ctx = make_context()
        ctx.span("rx", 1, msg=(0, 1))
        ctx.span("rx", 2, msg=(0, 1))
        ctx.span("deliver", 2, msg=(0, 1))
        counters = ctx.registry.snapshot()["counters"]
        assert counters["spans.rx"] == 2
        assert counters["spans.deliver"] == 1

    def test_last_span_id(self):
        _, ctx = make_context()
        ctx.span("rx", 1, msg=(0, 1))
        last = ctx.span("verify", 1, msg=(0, 1))
        ctx.span("rx", 2, msg=(0, 2))
        assert ctx.last_span_id(1) == last
        assert ctx.last_span_id(1, msg=(0, 1)) == last
        assert ctx.last_span_id(9) is None

    def test_all_documented_phases_are_recordable(self):
        _, ctx = make_context()
        for phase in PHASES:
            assert ctx.span(phase, 0) is not None


class TestActivation:
    def test_session_installs_and_restores(self):
        assert active() is None
        _, ctx = make_context()
        with session(ctx) as installed:
            assert installed is ctx
            assert obs_context.ACTIVE is ctx
        assert obs_context.ACTIVE is None

    def test_sessions_nest(self):
        _, outer = make_context()
        _, inner = make_context()
        with session(outer):
            with session(inner):
                assert obs_context.ACTIVE is inner
            assert obs_context.ACTIVE is outer
        assert obs_context.ACTIVE is None

    def test_disabled_means_no_active_context(self):
        # The zero-cost contract: every instrumented seam guards on this
        # exact read being None.
        assert obs_context.ACTIVE is None


class TestPickling:
    def test_context_roundtrips_with_state(self):
        sim, ctx = make_context()
        ctx.span("rx", 1, msg=(0, 1))
        ctx.span("deliver", 1, msg=(0, 1))
        ctx.meta["n"] = 4
        clone = pickle.loads(pickle.dumps(ctx))
        assert [s.span_id for s in clone.spans] == \
            [s.span_id for s in ctx.spans]
        assert clone.meta == ctx.meta
        # Occurrence counters survive: the next id continues the stream.
        clone.bind(sim)
        assert clone.span("purge", 1, msg=(0, 1)) == "0:1/1/3"


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(4.5)
        hist = registry.histogram("h")
        hist.add(0.3)
        hist.add(100.0)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 4.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["max"] == 100.0

    def test_primitives_pickle(self):
        counter = Counter("c")
        counter.inc(5)
        gauge = Gauge("g")
        gauge.set(1.5)
        hist = Histogram("h")
        hist.add(2.0)
        assert pickle.loads(pickle.dumps(counter)).value == 5
        assert pickle.loads(pickle.dumps(gauge)).value == 1.5
        assert pickle.loads(pickle.dumps(hist)).count == 1

    def test_record_sample_builds_rectangular_series(self):
        registry = MetricRegistry()
        registry.record_sample(0.0, {"x": 1.0})
        registry.record_sample(1.0, {"x": 2.0, "y": 5.0})
        series = registry.series_dict()
        assert series["time"] == [0.0, 1.0]
        assert series["x"] == [1.0, 2.0]
        # Late-appearing columns are backfilled to rectangular shape.
        assert series["y"] == [0.0, 5.0]

    def test_merge_payloads_averages_series_and_sums_counters(self):
        payloads = [
            {"meta": {"n": 4}, "span_count": 10, "dropped_spans": 0,
             "series": {"time": [0.0, 1.0], "x": [2.0, 4.0]},
             "counters": {"spans.rx": 3}},
            {"meta": {"n": 4}, "span_count": 14, "dropped_spans": 1,
             "series": {"time": [0.0, 1.0, 2.0], "x": [4.0, 8.0, 9.0]},
             "counters": {"spans.rx": 5, "spans.tx": 2}},
        ]
        merged = merge_payloads(payloads)
        assert merged["replicates"] == 2
        assert merged["span_count"] == 24
        assert merged["dropped_spans"] == 1
        assert merged["counters"] == {"spans.rx": 8, "spans.tx": 2}
        # Series are element-wise means truncated to the shortest run.
        assert merged["series"]["time"] == [0.0, 1.0]
        assert merged["series"]["x"] == [3.0, 6.0]
