"""Unit tests for per-source FIFO ordering and gap handling."""

import pytest

from repro.des.kernel import Simulator
from repro.reliable.ordering import FifoDeliveryQueue, GapPolicy


def make(gap_policy=GapPolicy.STALL, gap_timeout=5.0):
    sim = Simulator()
    delivered = []
    gaps = []
    queue = FifoDeliveryQueue(
        sim, lambda source, seq, payload: delivered.append((source, seq)),
        gap_policy=gap_policy, gap_timeout=gap_timeout,
        on_gap=lambda source, seq: gaps.append((source, seq)))
    return sim, queue, delivered, gaps


class TestInOrder:
    def test_sequential_delivery(self):
        _, queue, delivered, _ = make()
        for seq in (1, 2, 3):
            queue.offer(7, seq, b"x")
        assert delivered == [(7, 1), (7, 2), (7, 3)]

    def test_out_of_order_buffered_then_drained(self):
        _, queue, delivered, _ = make()
        queue.offer(7, 3, b"x")
        queue.offer(7, 2, b"x")
        assert delivered == []
        assert queue.pending_count(7) == 2
        queue.offer(7, 1, b"x")
        assert delivered == [(7, 1), (7, 2), (7, 3)]
        assert queue.pending_count(7) == 0

    def test_duplicates_ignored(self):
        _, queue, delivered, _ = make()
        queue.offer(7, 1, b"x")
        queue.offer(7, 1, b"x")
        queue.offer(7, 2, b"x")
        queue.offer(7, 2, b"x")
        assert delivered == [(7, 1), (7, 2)]

    def test_sources_independent(self):
        _, queue, delivered, _ = make()
        queue.offer(1, 1, b"x")
        queue.offer(2, 2, b"x")   # source 2 waits for its seq 1
        queue.offer(2, 1, b"x")
        assert delivered == [(1, 1), (2, 1), (2, 2)]

    def test_ack_vector_tracks_contiguous(self):
        _, queue, _, _ = make()
        queue.offer(1, 1, b"x")
        queue.offer(1, 2, b"x")
        queue.offer(1, 4, b"x")   # hole at 3
        queue.offer(2, 1, b"x")
        assert queue.ack_vector() == {1: 2, 2: 1}
        assert queue.highest_contiguous(1) == 2
        assert queue.highest_contiguous(9) == 0

    def test_delivered_counter(self):
        _, queue, _, _ = make()
        for seq in (1, 2):
            queue.offer(1, seq, b"x")
        assert queue.delivered == 2


class TestGapPolicies:
    def test_stall_holds_forever(self):
        sim, queue, delivered, gaps = make(GapPolicy.STALL)
        queue.offer(7, 2, b"x")  # seq 1 missing
        sim.run(until=100.0)
        assert delivered == []
        assert gaps == []

    def test_skip_after_timeout(self):
        sim, queue, delivered, gaps = make(GapPolicy.SKIP, gap_timeout=5.0)
        queue.offer(7, 2, b"x")
        sim.run(until=4.0)
        assert delivered == []
        sim.run(until=6.0)
        assert gaps == [(7, 1)]
        assert delivered == [(7, 2)]
        assert queue.skipped == 1

    def test_gap_filled_before_timeout_not_skipped(self):
        sim, queue, delivered, gaps = make(GapPolicy.SKIP, gap_timeout=5.0)
        queue.offer(7, 2, b"x")
        sim.schedule(2.0, lambda: queue.offer(7, 1, b"x"))
        sim.run(until=10.0)
        assert gaps == []
        assert delivered == [(7, 1), (7, 2)]

    def test_multiple_consecutive_gaps_skipped(self):
        sim, queue, delivered, gaps = make(GapPolicy.SKIP, gap_timeout=2.0)
        queue.offer(7, 4, b"x")   # 1, 2, 3 all missing
        sim.run(until=10.0)
        assert delivered == [(7, 4)]
        assert gaps == [(7, 1), (7, 2), (7, 3)]

    def test_invalid_timeout(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FifoDeliveryQueue(sim, lambda *a: None, gap_timeout=0)
