"""Unit tests for the VERBOSE and TRUST failure detectors."""

import pytest

from repro.des.kernel import Simulator
from repro.fd.events import SuspicionReason
from repro.fd.mute import MuteConfig, MuteFailureDetector
from repro.fd.events import ExpectMode, HeaderPattern
from repro.fd.trust import TrustConfig, TrustFailureDetector, TrustLevel
from repro.fd.verbose import VerboseConfig, VerboseFailureDetector


class TestVerbose:
    def make(self, threshold=3, aging_period=1000.0, aging_amount=1):
        sim = Simulator()
        fd = VerboseFailureDetector(sim, VerboseConfig(
            suspicion_threshold=threshold, aging_period=aging_period,
            aging_amount=aging_amount))
        return sim, fd

    def test_indict_below_threshold_not_suspected(self):
        _, fd = self.make(threshold=3)
        fd.indict(5)
        fd.indict(5)
        assert not fd.suspected(5)

    def test_indict_reaching_threshold_suspected(self):
        _, fd = self.make(threshold=3)
        for _ in range(3):
            fd.indict(5)
        assert fd.suspected(5)
        assert fd.suspected_nodes() == [5]

    def test_listener_fires_once(self):
        _, fd = self.make(threshold=2)
        events = []
        fd.add_listener(lambda n, r: events.append((n, r)))
        for _ in range(4):
            fd.indict(5)
        assert events == [(5, SuspicionReason.VERBOSE)]

    def test_aging_decrements(self):
        sim, fd = self.make(threshold=2, aging_period=5.0)
        fd.indict(5)
        fd.indict(5)
        assert fd.suspected(5)
        sim.run(until=11.0)
        assert not fd.suspected(5)
        assert fd.suspicion_count(5) == 0

    def test_min_spacing_violation_indicts(self):
        sim, fd = self.make(threshold=1)
        fd.set_min_spacing("gossip", 1.0)
        fd.observe(5, "gossip")
        sim.schedule(0.2, lambda: fd.observe(5, "gossip"))
        sim.run(until=1.0)
        assert fd.suspected(5)
        assert fd.stats.rate_violations == 1

    def test_spaced_arrivals_tolerated(self):
        sim, fd = self.make(threshold=1)
        fd.set_min_spacing("gossip", 1.0)
        for t in range(5):
            sim.schedule_at(float(t) * 1.5 + 0.1,
                            lambda: fd.observe(5, "gossip"))
        sim.run()
        assert not fd.suspected(5)

    def test_unpoliced_type_ignored(self):
        sim, fd = self.make(threshold=1)
        fd.observe(5, "data")
        fd.observe(5, "data")
        assert not fd.suspected(5)

    def test_per_sender_tracking(self):
        sim, fd = self.make(threshold=1)
        fd.set_min_spacing("gossip", 1.0)
        fd.observe(5, "gossip")
        fd.observe(6, "gossip")  # different sender, no violation
        assert not fd.suspected(5)
        assert not fd.suspected(6)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            VerboseConfig(suspicion_threshold=0)
        with pytest.raises(ValueError):
            VerboseConfig(aging_period=0)
        sim, fd = self.make()
        with pytest.raises(ValueError):
            fd.set_min_spacing("x", 0)


class TestTrust:
    def make(self, direct_threshold=1, ttl=60.0):
        sim = Simulator()
        mute = MuteFailureDetector(sim, MuteConfig(suspicion_threshold=1))
        verbose = VerboseFailureDetector(sim,
                                         VerboseConfig(suspicion_threshold=2))
        trust = TrustFailureDetector(sim, mute, verbose, TrustConfig(
            direct_threshold=direct_threshold, peer_report_ttl=ttl))
        return sim, mute, verbose, trust

    def test_default_level_trusted(self):
        _, _, _, trust = self.make()
        assert trust.level(9) is TrustLevel.TRUSTED
        assert trust.trusts(9)

    def test_direct_suspect_untrusts(self):
        _, _, _, trust = self.make()
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        assert trust.level(9) is TrustLevel.UNTRUSTED
        assert 9 in trust.untrusted_nodes()

    def test_mute_suspicion_propagates(self):
        sim, mute, _, trust = self.make()
        mute.expect(HeaderPattern(type="data", seq=1), [9], ExpectMode.ONE)
        sim.run(until=3.0)
        assert trust.level(9) is TrustLevel.UNTRUSTED

    def test_verbose_suspicion_propagates(self):
        _, _, verbose, trust = self.make()
        verbose.indict(9)
        verbose.indict(9)
        assert trust.level(9) is TrustLevel.UNTRUSTED

    def test_peer_report_marks_unknown(self):
        _, _, _, trust = self.make()
        trust.report_from_peer(reporter=2, suspected_node=9)
        assert trust.level(9) is TrustLevel.UNKNOWN

    def test_unknown_does_not_override_untrusted(self):
        _, _, _, trust = self.make()
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        trust.report_from_peer(reporter=2, suspected_node=9)
        assert trust.level(9) is TrustLevel.UNTRUSTED

    def test_report_from_untrusted_reporter_ignored(self):
        # "unless p already suspects either q or r"
        _, _, _, trust = self.make()
        trust.suspect(2, SuspicionReason.BAD_SIGNATURE)
        trust.report_from_peer(reporter=2, suspected_node=9)
        assert trust.level(9) is TrustLevel.TRUSTED

    def test_self_report_ignored(self):
        _, _, _, trust = self.make()
        trust.report_from_peer(reporter=9, suspected_node=9)
        assert trust.level(9) is TrustLevel.TRUSTED

    def test_peer_report_expires(self):
        sim, _, _, trust = self.make(ttl=10.0)
        trust.report_from_peer(reporter=2, suspected_node=9)
        assert trust.level(9) is TrustLevel.UNKNOWN
        sim.run(until=15.0)
        assert trust.level(9) is TrustLevel.TRUSTED

    def test_direct_threshold_counting(self):
        _, _, _, trust = self.make(direct_threshold=3)
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        assert trust.level(9) is TrustLevel.TRUSTED
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        assert trust.level(9) is TrustLevel.UNTRUSTED

    def test_direct_suspicion_ages_out(self):
        sim, _, _, trust = self.make()
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        sim.run(until=45.0)  # > aging period (20 s default)
        assert trust.level(9) is TrustLevel.TRUSTED

    def test_history_recorded(self):
        sim, _, _, trust = self.make()
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        history = trust.history(9)
        assert len(history) == 1
        assert history[0][1] is SuspicionReason.BAD_SIGNATURE

    def test_listener_notified(self):
        _, _, _, trust = self.make()
        events = []
        trust.add_listener(lambda n, level: events.append((n, level)))
        trust.suspect(9, SuspicionReason.BAD_SIGNATURE)
        assert (9, TrustLevel.UNTRUSTED) in events

    def test_levels_ordered(self):
        assert TrustLevel.UNTRUSTED < TrustLevel.UNKNOWN < TrustLevel.TRUSTED

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrustConfig(direct_threshold=0)
        with pytest.raises(ValueError):
            TrustConfig(peer_report_ttl=0)
