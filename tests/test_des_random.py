"""Unit tests for seeded random streams."""

from repro.des.random import RandomStream, StreamFactory


def test_same_seed_same_sequence():
    a = RandomStream(99)
    b = RandomStream(99)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_diverge():
    a = RandomStream(1)
    b = RandomStream(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_uniform_bounds():
    rng = RandomStream(7)
    for _ in range(200):
        value = rng.uniform(2.0, 5.0)
        assert 2.0 <= value <= 5.0


def test_randint_inclusive():
    rng = RandomStream(7)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_chance_extremes():
    rng = RandomStream(7)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    assert not rng.chance(-0.5)
    assert rng.chance(1.5)


def test_chance_roughly_calibrated():
    rng = RandomStream(7)
    hits = sum(rng.chance(0.3) for _ in range(5000))
    assert 0.25 < hits / 5000 < 0.35


def test_jitter_bounds():
    rng = RandomStream(7)
    for _ in range(100):
        value = rng.jitter(10.0, 0.2)
        assert 8.0 <= value <= 12.0


def test_choice_and_sample():
    rng = RandomStream(7)
    items = ["a", "b", "c", "d"]
    assert rng.choice(items) in items
    sampled = rng.sample(items, 2)
    assert len(sampled) == 2
    assert set(sampled) <= set(items)


def test_shuffle_preserves_elements():
    rng = RandomStream(7)
    items = list(range(10))
    rng.shuffle(items)
    assert sorted(items) == list(range(10))


def test_expovariate_positive():
    rng = RandomStream(7)
    assert all(rng.expovariate(2.0) > 0 for _ in range(100))


class TestStreamFactory:
    def test_same_name_same_stream(self):
        factory = StreamFactory(5)
        a = factory.stream("medium")
        b = factory.stream("medium")
        assert [a.random() for _ in range(5)] == [b.random()
                                                  for _ in range(5)]

    def test_different_names_independent(self):
        factory = StreamFactory(5)
        a = factory.stream("medium")
        b = factory.stream("mobility")
        assert [a.random() for _ in range(5)] != [b.random()
                                                  for _ in range(5)]

    def test_different_master_seeds_differ(self):
        a = StreamFactory(1).stream("x")
        b = StreamFactory(2).stream("x")
        assert a.random() != b.random()

    def test_stable_across_instances(self):
        # Derivation must not depend on interpreter hash salting.
        a = StreamFactory(123).stream("component").seed
        b = StreamFactory(123).stream("component").seed
        assert a == b

    def test_streams_iterator(self):
        factory = StreamFactory(5)
        names = ["a", "b", "c"]
        streams = list(factory.streams(names))
        assert len(streams) == 3
        seeds = {s.seed for s in streams}
        assert len(seeds) == 3
