"""Unit tests for the message store."""

from repro.core.messages import DataMessage, GossipMessage, MessageId
from repro.core.store import MessageStore
from repro.crypto.keystore import HmacScheme, KeyDirectory


def make():
    directory = KeyDirectory(HmacScheme(seed=b"store"))
    signer = directory.issue(1)
    return MessageStore(), signer


def data(signer, seq):
    return DataMessage.create(signer, seq, b"payload")


def gossip(signer, seq):
    return GossipMessage.create(signer, seq)


class TestMessages:
    def test_add_and_get(self):
        store, signer = make()
        message = data(signer, 1)
        store.add_message(message, now=0.0)
        assert store.has_message(message.msg_id)
        assert store.message(message.msg_id) == message

    def test_missing_message(self):
        store, _ = make()
        assert not store.has_message(MessageId(1, 1))
        assert store.message(MessageId(1, 1)) is None

    def test_accept_once(self):
        store, signer = make()
        msg_id = MessageId(1, 1)
        assert store.mark_accepted(msg_id)
        assert not store.mark_accepted(msg_id)
        assert store.was_accepted(msg_id)
        assert store.accepted_count == 1

    def test_buffered_count(self):
        store, signer = make()
        for seq in range(3):
            store.add_message(data(signer, seq), now=0.0)
        assert store.buffered_count == 3


class TestGossip:
    def test_add_and_get(self):
        store, signer = make()
        entry = gossip(signer, 1)
        store.add_gossip(entry)
        assert store.has_gossip(entry.msg_id)
        assert store.gossip(entry.msg_id) == entry

    def test_first_gossip_wins(self):
        store, signer = make()
        first = gossip(signer, 1)
        store.add_gossip(first)
        duplicate = GossipMessage(msg_id=first.msg_id, signature=b"other")
        store.add_gossip(duplicate)
        assert store.gossip(first.msg_id) == first

    def test_start_gossiping_requires_both(self):
        store, signer = make()
        message = data(signer, 1)
        entry = gossip(signer, 1)
        assert not store.start_gossiping(message.msg_id, 0.0)  # nothing yet
        store.add_gossip(entry)
        assert not store.start_gossiping(message.msg_id, 0.0)  # no message
        store.add_message(message, 0.0)
        assert store.start_gossiping(message.msg_id, 0.0)
        assert store.is_gossiping(message.msg_id)
        assert not store.start_gossiping(message.msg_id, 0.0)  # idempotent

    def test_batch_returns_active_entries(self):
        store, signer = make()
        for seq in range(3):
            store.add_message(data(signer, seq), 0.0)
            store.add_gossip(gossip(signer, seq))
            store.start_gossiping(MessageId(1, seq), 0.0)
        batch = store.gossip_batch(10)
        assert {g.msg_id.seq for g in batch} == {0, 1, 2}

    def test_batch_rotates_under_limit(self):
        store, signer = make()
        for seq in range(5):
            store.add_message(data(signer, seq), 0.0)
            store.add_gossip(gossip(signer, seq))
            store.start_gossiping(MessageId(1, seq), 0.0)
        seen = set()
        for _ in range(5):
            for entry in store.gossip_batch(2):
                seen.add(entry.msg_id.seq)
        assert seen == {0, 1, 2, 3, 4}

    def test_batch_advertise_ttl_filters_old(self):
        store, signer = make()
        store.add_message(data(signer, 1), 0.0)
        store.add_gossip(gossip(signer, 1))
        store.start_gossiping(MessageId(1, 1), 0.0)
        store.add_message(data(signer, 2), 10.0)
        store.add_gossip(gossip(signer, 2))
        store.start_gossiping(MessageId(1, 2), 10.0)
        batch = store.gossip_batch(10, now=12.0, max_age=6.0)
        assert {g.msg_id.seq for g in batch} == {2}

    def test_batch_empty(self):
        store, _ = make()
        assert store.gossip_batch(10) == []


class TestRequestPacing:
    def test_first_request_allowed(self):
        store, _ = make()
        assert store.may_request(MessageId(1, 1), now=0.0, min_interval=1.0)

    def test_second_request_paced(self):
        store, _ = make()
        msg_id = MessageId(1, 1)
        store.note_request(msg_id, now=0.0)
        assert not store.may_request(msg_id, now=0.5, min_interval=1.0)
        assert store.may_request(msg_id, now=1.0, min_interval=1.0)


class TestGossipRotationFairness:
    """Regression: the rotation must stay fair when the active set
    shrinks mid-rotation.  The old index-based cursor skipped or
    double-served entries after a purge and could starve an id forever.
    """

    @staticmethod
    def _arm(store, signer, seqs, now=0.0):
        for seq in seqs:
            store.add_message(data(signer, seq), now)
            store.add_gossip(gossip(signer, seq))
            store.start_gossiping(MessageId(1, seq), now)

    def test_purge_mid_rotation_does_not_skip_survivors(self):
        store, signer = make()
        self._arm(store, signer, range(5))
        first = {g.msg_id.seq for g in store.gossip_batch(2)}
        assert first == {0, 1}
        # Drop an already-served id; the un-served tail must still all
        # get airtime in the following batches.
        store.purge_one(MessageId(1, 0))
        second = {g.msg_id.seq for g in store.gossip_batch(2)}
        third = {g.msg_id.seq for g in store.gossip_batch(2)}
        assert second | third >= {2, 3, 4}

    def test_purge_of_unserved_id_does_not_starve_others(self):
        store, signer = make()
        self._arm(store, signer, range(6))
        store.gossip_batch(2)                     # serves 0, 1
        store.purge_one(MessageId(1, 2))          # shrink ahead of cursor
        served = set()
        for _ in range(3):
            served |= {g.msg_id.seq for g in store.gossip_batch(2)}
        assert served >= {3, 4, 5}                # nobody starved

    def test_every_id_served_within_one_cycle(self):
        # With k active ids and batch limit L, every id must appear
        # within ceil(k / L) consecutive batches — the LRU rotation's
        # fairness bound — even while ids keep being purged.
        store, signer = make()
        self._arm(store, signer, range(8))
        survivors = {3, 4, 5, 6, 7}
        for seq in (0, 1, 2):
            store.gossip_batch(3)
            store.purge_one(MessageId(1, seq))
        served = set()
        for _ in range(2):                        # ceil(5 / 3) = 2
            served |= {g.msg_id.seq for g in store.gossip_batch(3)}
        assert served >= survivors

    def test_rotation_is_deterministic(self):
        runs = []
        for _ in range(2):
            store, signer = make()
            self._arm(store, signer, range(7))
            batches = [tuple(g.msg_id.seq for g in store.gossip_batch(3))
                       for _ in range(6)]
            runs.append(batches)
        assert runs[0] == runs[1]


class TestRequestBacklogBound:
    """Regression: ids requested but never received used to pile up in
    ``_last_request`` forever (purge only dropped keys that had a
    buffered message).  A long run against a persistently mute source —
    gossip arrives, DATA never does — must keep the backlog bounded.
    """

    TIMEOUT = 30.0

    def test_never_received_requests_age_out(self):
        store, _ = make()
        # A mute source advertises a new message every second for 600
        # virtual seconds; we request each one and never hear back.
        # Nodes purge on their gossip cadence; emulate a 1 Hz purge.
        peak = 0
        for second in range(600):
            now = float(second)
            store.note_request(MessageId(7, second), now)
            store.purge(now, self.TIMEOUT)
            peak = max(peak, store.request_backlog)
        # Bounded by the purge window, not by run length (the old code
        # reached 600 here — one entry per advertised id).
        assert peak <= self.TIMEOUT + 1
        store.purge(600.0 + self.TIMEOUT, self.TIMEOUT)
        assert store.request_backlog == 0

    def test_expiry_does_not_relax_pacing(self):
        # TTL expiry must never allow a re-request earlier than pacing
        # alone would: entries only expire once older than `timeout`,
        # which dominates `min_interval` in any sane configuration.
        store, _ = make()
        msg_id = MessageId(7, 1)
        store.note_request(msg_id, now=0.0)
        store.purge(now=0.5, timeout=self.TIMEOUT)      # too young to expire
        assert not store.may_request(msg_id, now=0.9, min_interval=1.0)
        assert store.request_backlog == 1

    def test_received_then_purged_id_clears_backlog(self):
        store, signer = make()
        message = data(signer, 1)
        store.note_request(message.msg_id, now=0.0)
        store.add_message(message, now=1.0)
        store.purge(now=40.0, timeout=self.TIMEOUT)
        assert store.request_backlog == 0


class TestPurge:
    def test_old_messages_purged(self):
        store, signer = make()
        old = data(signer, 1)
        fresh = data(signer, 2)
        store.add_message(old, now=0.0)
        store.add_message(fresh, now=20.0)
        purged = store.purge(now=30.0, timeout=15.0)
        assert purged == [old.msg_id]
        assert not store.message(old.msg_id)
        assert store.message(fresh.msg_id)

    def test_purge_clears_gossip_state(self):
        store, signer = make()
        store.add_message(data(signer, 1), 0.0)
        store.add_gossip(gossip(signer, 1))
        store.start_gossiping(MessageId(1, 1), 0.0)
        store.purge(now=100.0, timeout=10.0)
        assert not store.has_gossip(MessageId(1, 1))
        assert not store.is_gossiping(MessageId(1, 1))
        assert store.gossip_batch(10) == []

    def test_receipt_history_survives_purge(self):
        # Duplicates must stay duplicates even after the payload is gone.
        store, signer = make()
        message = data(signer, 1)
        store.add_message(message, 0.0)
        store.mark_accepted(message.msg_id)
        store.purge(now=100.0, timeout=10.0)
        assert store.has_message(message.msg_id)   # history retained
        assert store.message(message.msg_id) is None  # payload gone
        assert not store.mark_accepted(message.msg_id)
