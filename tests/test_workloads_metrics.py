"""Unit tests for workload generators, scenarios, and metrics."""

import pytest

from repro.core.messages import MessageId
from repro.des.kernel import Simulator
from repro.des.random import RandomStream
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import mean, percentile, summarize
from repro.workloads.scenarios import (
    AdversaryMix,
    ScenarioConfig,
    area_side_for_degree,
)
from repro.workloads.sources import (
    periodic_source,
    poisson_arrivals,
    single_shot,
)


class TestSources:
    def test_single_shot(self):
        events = single_shot(source=3, time=1.5, payload_size=64)
        assert len(events) == 1
        assert events[0].source == 3
        assert len(events[0].payload()) == 64

    def test_periodic_source(self):
        events = periodic_source(1, period=2.0, count=4, start=1.0)
        assert [e.time for e in events] == [1.0, 3.0, 5.0, 7.0]

    def test_periodic_invalid(self):
        with pytest.raises(ValueError):
            periodic_source(1, period=0, count=3)
        with pytest.raises(ValueError):
            periodic_source(1, period=1.0, count=-1)

    def test_poisson_rate_calibrated(self):
        events = poisson_arrivals([0, 1, 2], rate_hz=5.0, duration=200.0,
                                  rng=RandomStream(3))
        assert 800 < len(events) < 1200  # ~1000 expected
        assert all(0.0 <= e.time < 200.0 for e in events)
        assert {e.source for e in events} <= {0, 1, 2}

    def test_poisson_reproducible(self):
        a = poisson_arrivals([0], 2.0, 50.0, RandomStream(9))
        b = poisson_arrivals([0], 2.0, 50.0, RandomStream(9))
        assert [e.time for e in a] == [e.time for e in b]

    def test_poisson_invalid(self):
        with pytest.raises(ValueError):
            poisson_arrivals([], 1.0, 10.0, RandomStream(1))
        with pytest.raises(ValueError):
            poisson_arrivals([0], 0.0, 10.0, RandomStream(1))

    def test_payload_deterministic_and_sized(self):
        event = periodic_source(1, 1.0, 1, payload_size=100)[0]
        assert event.payload() == event.payload()
        assert len(event.payload()) == 100


class TestScenario:
    def test_area_side_for_degree(self):
        side = area_side_for_degree(40, 100.0, 8.0)
        assert side > 0
        import math
        density = 40 / side ** 2
        assert density * math.pi * 100 ** 2 == pytest.approx(8.0)

    def test_default_scenario_valid(self):
        scenario = ScenarioConfig()
        assert scenario.side() > 0

    def test_explicit_area_side(self):
        scenario = ScenarioConfig(area_side=500.0)
        assert scenario.side() == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n=1)
        with pytest.raises(ValueError):
            ScenarioConfig(placement="ring")
        with pytest.raises(ValueError):
            ScenarioConfig(mobility="teleport")
        with pytest.raises(ValueError):
            ScenarioConfig(n=3, adversaries=AdversaryMix.mute(3))

    def test_with_helpers(self):
        scenario = ScenarioConfig(n=10, seed=1)
        assert scenario.with_n(20).n == 20
        assert scenario.with_seed(9).seed == 9
        mix = AdversaryMix.mute(2)
        assert scenario.with_adversaries(mix).adversaries.total == 2

    def test_high_id_assignment(self):
        scenario = ScenarioConfig(n=10, adversaries=AdversaryMix.mute(3))
        assignment = scenario.byzantine_assignment(0, RandomStream(1))
        assert set(assignment) == {9, 8, 7}
        assert all(kind == "mute" for kind in assignment.values())

    def test_source_never_byzantine(self):
        scenario = ScenarioConfig(
            n=10, adversaries=AdversaryMix.mute(3, placement="random"))
        for seed in range(5):
            assignment = scenario.byzantine_assignment(4, RandomStream(seed))
            assert 4 not in assignment

    def test_mixed_adversaries(self):
        mix = AdversaryMix(counts={"mute": 2, "forging": 1})
        scenario = ScenarioConfig(n=10, adversaries=mix)
        assignment = scenario.byzantine_assignment(0, RandomStream(1))
        assert len(assignment) == 3
        assert sorted(assignment.values()) == ["forging", "mute", "mute"]


class TestCollector:
    def test_delivery_ratio_full(self):
        collector = MetricsCollector(correct_nodes={0, 1, 2})
        msg_id = MessageId(0, 1)
        collector.on_broadcast(msg_id, time=1.0)
        collector.on_accept(1, msg_id, time=1.5)
        collector.on_accept(2, msg_id, time=2.0)
        assert collector.delivery_ratio() == 1.0
        assert collector.complete_fraction() == 1.0
        assert collector.mean_latency() == pytest.approx(0.75)
        assert collector.max_latency() == pytest.approx(1.0)

    def test_partial_delivery(self):
        collector = MetricsCollector(correct_nodes={0, 1, 2, 3})
        msg_id = MessageId(0, 1)
        collector.on_broadcast(msg_id, time=0.0)
        collector.on_accept(1, msg_id, time=1.0)
        assert collector.delivery_ratio() == pytest.approx(1 / 3)
        assert collector.complete_fraction() == 0.0
        assert collector.records[0].completion_latency is None

    def test_byzantine_accepts_not_counted(self):
        collector = MetricsCollector(correct_nodes={0, 1})
        msg_id = MessageId(0, 1)
        collector.on_broadcast(msg_id, time=0.0)
        collector.on_accept(9, msg_id, time=1.0)  # not a correct node
        assert collector.delivery_ratio() == 0.0

    def test_duplicate_accept_keeps_first_time(self):
        collector = MetricsCollector(correct_nodes={0, 1})
        msg_id = MessageId(0, 1)
        collector.on_broadcast(msg_id, time=0.0)
        collector.on_accept(1, msg_id, time=1.0)
        collector.on_accept(1, msg_id, time=5.0)
        assert collector.mean_latency() == pytest.approx(1.0)

    def test_unknown_message_accept_ignored(self):
        collector = MetricsCollector(correct_nodes={0, 1})
        collector.on_accept(1, MessageId(5, 5), time=1.0)
        assert collector.records == []

    def test_completion_latency(self):
        collector = MetricsCollector(correct_nodes={0, 1, 2})
        msg_id = MessageId(0, 1)
        collector.on_broadcast(msg_id, time=10.0)
        collector.on_accept(1, msg_id, time=11.0)
        collector.on_accept(2, msg_id, time=14.0)
        assert collector.records[0].completion_latency == pytest.approx(4.0)

    def test_percentile_latency(self):
        collector = MetricsCollector(correct_nodes=set(range(11)))
        msg_id = MessageId(0, 1)
        collector.on_broadcast(msg_id, time=0.0)
        for i in range(1, 11):
            collector.on_accept(i, msg_id, time=float(i))
        assert collector.percentile_latency(0.5) == pytest.approx(6.0)

    def test_no_broadcasts_defaults(self):
        collector = MetricsCollector(correct_nodes={0})
        assert collector.delivery_ratio() == 1.0
        assert collector.mean_latency() is None


class TestSummary:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_summarize_empty(self):
        assert summarize([]) is None

    def test_mean(self):
        assert mean([2.0, 4.0]) == 3.0
        assert mean([]) is None

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_percentile_empty(self):
        assert percentile([], 0.5) is None
