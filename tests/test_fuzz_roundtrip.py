"""FaultSchedule/CorpusEntry JSON round-trip exactness.

The corpus leans on an exact contract: ``from_json(to_json(s)) == s`` and
the re-serialization is byte-identical — for arbitrary timestamps,
behaviour kwargs, and attacker windows.  JSON is lossy about containers
(tuples and lists collapse, sets don't exist) and numeric faces (``1``
vs ``1.0``), so :class:`FaultEvent` canonicalizes at construction time;
these tests pin that canonicalization from every angle hypothesis can
reach.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultEvent, FaultSchedule
from repro.fuzz import CorpusEntry, TargetSpec

from tests.helpers import fault_schedules

pytestmark = pytest.mark.fuzz

RELAXED = dict(deadline=None,
               suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=200, **RELAXED)
@given(schedule=fault_schedules(10, horizon=50.0, max_events=8))
def test_schedule_json_round_trip_exact(schedule):
    reparsed = FaultSchedule.from_json(schedule.to_json())
    assert reparsed == schedule
    assert reparsed.to_json() == schedule.to_json()
    assert reparsed.digest() == schedule.digest()


@settings(max_examples=100, **RELAXED)
@given(time=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                      allow_infinity=False, allow_subnormal=False),
       node=st.integers(min_value=0, max_value=1000))
def test_arbitrary_timestamps_survive(time, node):
    event = FaultEvent(time=time, node=node, action="crash")
    again = FaultEvent.from_dict(json.loads(json.dumps(event.to_dict())))
    assert again == event
    assert again.time == event.time


def test_int_time_equals_float_time():
    assert FaultEvent(1, 3, "mute") == FaultEvent(1.0, 3, "mute")
    reparsed = FaultEvent.from_dict(FaultEvent(1, 3, "mute").to_dict())
    assert isinstance(reparsed.time, float)


def test_container_params_canonicalize():
    """Tuples, lists and (frozen)sets of drop kinds are the same event —
    and equal their own JSON round trip."""
    as_tuple = FaultEvent(1.0, 2, "behavior",
                          params={"kind": "selective_drop",
                                  "drop_probability": 0.5,
                                  "drop_kinds": ("data", "gossip")})
    as_list = FaultEvent(1.0, 2, "behavior",
                         params={"kind": "selective_drop",
                                 "drop_probability": 0.5,
                                 "drop_kinds": ["data", "gossip"]})
    as_set = FaultEvent(1.0, 2, "behavior",
                        params={"kind": "selective_drop",
                                "drop_probability": 0.5,
                                "drop_kinds": frozenset(
                                    ("gossip", "data"))})
    assert as_tuple == as_list == as_set
    for event in (as_tuple, as_list, as_set):
        assert FaultEvent.from_dict(
            json.loads(json.dumps(event.to_dict()))) == event


def test_param_key_order_is_canonical():
    a = FaultEvent(0.0, 1, "attacker_start",
                   params={"kind": "request_flood", "rate_hz": 5.0})
    b = FaultEvent(0.0, 1, "attacker_start",
                   params={"rate_hz": 5.0, "kind": "request_flood"})
    assert a == b
    assert json.dumps(a.to_dict(), sort_keys=True) == \
        json.dumps(b.to_dict(), sort_keys=True)


def test_non_jsonable_params_rejected_at_construction():
    with pytest.raises(ValueError):
        FaultEvent(0.0, 1, "behavior", params={"kind": object()})
    with pytest.raises(ValueError):
        FaultEvent(0.0, 1, "behavior",
                   params={"kind": "mute", "extra": float("inf")})


def test_attacker_window_round_trips():
    schedule = FaultSchedule(events=(
        FaultEvent(0.25, 4, "attacker_start",
                   params={"kind": "gossip_flood", "rate_hz": 12.0,
                           "fanout": 3}),
        FaultEvent(3.75, 4, "attacker_stop"),
    ))
    again = FaultSchedule.from_json(schedule.to_json())
    assert again == schedule
    start = again.events[0]
    assert start.params["rate_hz"] == 12.0
    assert start.params["fanout"] == 3


@settings(max_examples=50, **RELAXED)
@given(schedule=fault_schedules(10, horizon=5.0, max_events=6),
       iteration=st.integers(min_value=0, max_value=10_000))
def test_corpus_entry_round_trip_exact(schedule, iteration):
    entry = CorpusEntry(target=TargetSpec(), schedule=schedule,
                        signature=("forged_payload",),
                        found_iteration=iteration,
                        stats={"original_events": len(schedule.events)})
    again = CorpusEntry.from_dict(json.loads(entry.to_json()))
    assert again == entry
    assert again.to_json() == entry.to_json()
    assert again.digest() == entry.digest()


def test_schedule_digest_is_content_address():
    a = FaultSchedule(events=(FaultEvent(1.0, 2, "mute"),))
    b = FaultSchedule(events=(FaultEvent(1, 2, "mute", params={}),))
    c = FaultSchedule(events=(FaultEvent(1.0, 3, "mute"),))
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
