"""Property and unit tests for the spatial hash grid index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.geometry import Position
from repro.radio.grid import SpatialHashGrid

coord = st.floats(min_value=-800.0, max_value=800.0,
                  allow_nan=False, allow_infinity=False)
placements = st.lists(st.tuples(coord, coord), min_size=1, max_size=40)


def build(points, cell_size=100.0):
    grid = SpatialHashGrid(cell_size)
    for node_id, (x, y) in enumerate(points):
        grid.insert(node_id, Position(x, y))
    return grid


class TestBasics:
    def test_insert_query_remove(self):
        grid = SpatialHashGrid(100.0)
        grid.insert(1, Position(10, 10))
        assert 1 in grid and len(grid) == 1
        assert grid.candidates(Position(0, 0), 50.0) == [1]
        grid.remove(1)
        assert 1 not in grid and len(grid) == 0
        grid.remove(1)  # tolerant, like Medium.detach

    def test_duplicate_insert_rejected(self):
        grid = SpatialHashGrid(100.0)
        grid.insert(1, Position(0, 0))
        with pytest.raises(ValueError):
            grid.insert(1, Position(5, 5))

    def test_move_of_unknown_id_inserts(self):
        grid = SpatialHashGrid(100.0)
        grid.move(3, Position(1, 1))
        assert 3 in grid

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SpatialHashGrid(0.0)
        grid = SpatialHashGrid(100.0)
        with pytest.raises(ValueError):
            grid.candidates(Position(0, 0), -1.0)

    def test_candidates_sorted_ascending(self):
        grid = SpatialHashGrid(50.0)
        for node_id in (9, 2, 7, 0, 4):
            grid.insert(node_id, Position(10, 10))
        assert grid.candidates(Position(0, 0), 40.0) == [0, 2, 4, 7, 9]

    def test_negative_coordinates_hash_correctly(self):
        grid = SpatialHashGrid(100.0)
        grid.insert(1, Position(-10, -10))
        assert grid.candidates(Position(0, 0), 20.0) == [1]

    def test_huge_radius_falls_back_to_everything(self):
        points = [(x * 300.0, 0.0) for x in range(10)]
        grid = build(points)
        assert grid.candidates(Position(0, 0), 1e7) == list(range(10))

    def test_rebuilt_preserves_membership(self):
        grid = build([(0, 0), (150, 150), (450, 20)])
        bigger = grid.rebuilt(500.0)
        assert bigger.cell_size == 500.0
        assert sorted(i for i, _ in bigger.items()) == [0, 1, 2]
        assert bigger.candidates(Position(0, 0), 1000.0) == [0, 1, 2]


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(placements, coord, coord,
           st.floats(min_value=1.0, max_value=400.0),
           st.floats(min_value=10.0, max_value=400.0))
    def test_candidates_superset_of_disk_membership(
            self, points, qx, qy, radius, cell_size):
        grid = build(points, cell_size)
        center = Position(qx, qy)
        candidates = set(grid.candidates(center, radius))
        exact = {node_id for node_id, (x, y) in enumerate(points)
                 if center.within(Position(x, y), radius)}
        assert candidates >= exact

    @settings(max_examples=60, deadline=None)
    @given(placements, st.lists(st.tuples(coord, coord), max_size=40),
           st.integers(min_value=0, max_value=2**31))
    def test_incremental_moves_equal_rebuild(self, points, targets, seed):
        """A grid mutated by `move` answers every query exactly like a
        grid built from scratch at the final positions."""
        grid = build(points)
        rng = random.Random(seed)
        final = {node_id: Position(x, y)
                 for node_id, (x, y) in enumerate(points)}
        for x, y in targets:
            node_id = rng.randrange(len(points))
            final[node_id] = Position(x, y)
            grid.move(node_id, final[node_id])
        fresh = SpatialHashGrid(grid.cell_size)
        for node_id, position in final.items():
            fresh.insert(node_id, position)
        assert grid.occupied_cells() == fresh.occupied_cells()
        for _ in range(10):
            center = Position(rng.uniform(-800, 800),
                              rng.uniform(-800, 800))
            radius = rng.uniform(1.0, 500.0)
            assert (grid.candidates(center, radius)
                    == fresh.candidates(center, radius))

    @settings(max_examples=60, deadline=None)
    @given(placements, st.floats(min_value=10.0, max_value=400.0))
    def test_positions_tracked_exactly(self, points, cell_size):
        grid = build(points, cell_size)
        for node_id, (x, y) in enumerate(points):
            assert grid.position_of(node_id) == Position(x, y)
        assert len(grid) == len(points)
