"""Tests for the trace recorder."""

import json

import pytest

from repro.adversary.behaviors import MuteBehavior
from repro.tracing.recorder import TraceRecorder

from tests.helpers import build_network, line_coords


def traced_network(coords, behaviors=None, categories=None, capacity=None):
    sim, medium, nodes, _ = build_network(coords, 100.0,
                                          behaviors=behaviors)
    recorder = TraceRecorder(sim, categories=categories, capacity=capacity)
    recorder.attach_network(medium, nodes)
    return sim, nodes, recorder


class TestRecording:
    def test_physical_events_recorded(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=5.0)
        counts = recorder.counts()
        assert counts.get("tx", 0) > 0
        assert counts.get("rx", 0) > 0

    def test_accept_events_carry_details(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=8.0)
        nodes[0].broadcast(b"traced")
        sim.run(until=sim.now + 10.0)
        accepts = recorder.select(category="accept")
        assert accepts
        assert all(e.details["originator"] == 0 for e in accepts)
        assert {e.node for e in accepts} == {1, 2}

    def test_suspect_events_on_mute_attack(self):
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, nodes, recorder = traced_network(
            positions, behaviors={2: MuteBehavior()})
        sim.run(until=8.0)
        for i in range(8):
            nodes[0].broadcast(f"p{i}".encode())
            sim.run(until=sim.now + 3.0)
        suspects = recorder.select(category="suspect")
        assert any(e.details["target"] == 2 for e in suspects)

    def test_overlay_status_flips_recorded(self):
        sim, nodes, recorder = traced_network(line_coords(4, 80.0))
        sim.run(until=10.0)
        flips = recorder.select(category="overlay")
        assert flips  # somebody elected itself during convergence

    def test_event_ordering_monotone(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=5.0)
        times = [event.time for event in recorder.events]
        assert times == sorted(times)


class TestFilteringAndQuerying:
    def test_category_filter(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0),
                                              categories=["accept"])
        sim.run(until=8.0)
        nodes[0].broadcast(b"x")
        sim.run(until=sim.now + 8.0)
        assert set(recorder.counts()) <= {"accept"}

    def test_unknown_category_rejected(self):
        sim, nodes, _ = traced_network(line_coords(2, 80.0))
        with pytest.raises(ValueError):
            TraceRecorder(sim, categories=["quantum"])

    def test_select_by_node_and_window(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=6.0)
        node1_events = recorder.select(node=1)
        assert node1_events
        assert all(e.node == 1 for e in node1_events)
        early = recorder.select(until=2.0)
        assert all(e.time <= 2.0 for e in early)

    def test_first_with_match(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=8.0)
        nodes[0].broadcast(b"x")
        sim.run(until=sim.now + 8.0)
        event = recorder.first("accept", originator=0)
        assert event is not None
        assert event.details["seq"] == 1
        assert recorder.first("accept", originator=99) is None

    def test_capacity_bound(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0),
                                              capacity=10)
        sim.run(until=20.0)
        assert len(recorder.events) == 10
        assert recorder.dropped > 0

    def test_clear(self):
        sim, nodes, recorder = traced_network(line_coords(2, 80.0))
        sim.run(until=3.0)
        recorder.clear()
        assert recorder.events == []
        assert recorder.dropped == 0


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=5.0)
        path = tmp_path / "trace.jsonl"
        count = recorder.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(recorder.events)
        parsed = json.loads(lines[0])
        assert {"time", "category", "node"} <= set(parsed)
