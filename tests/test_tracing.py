"""Tests for the trace recorder."""

import json

import pytest

from repro.adversary.behaviors import MuteBehavior
from repro.tracing.recorder import TraceRecorder

from tests.helpers import build_network, line_coords


def traced_network(coords, behaviors=None, categories=None, capacity=None):
    sim, medium, nodes, _ = build_network(coords, 100.0,
                                          behaviors=behaviors)
    recorder = TraceRecorder(sim, categories=categories, capacity=capacity)
    recorder.attach_network(medium, nodes)
    return sim, nodes, recorder


class TestRecording:
    def test_physical_events_recorded(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=5.0)
        counts = recorder.counts()
        assert counts.get("tx", 0) > 0
        assert counts.get("rx", 0) > 0

    def test_accept_events_carry_details(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=8.0)
        nodes[0].broadcast(b"traced")
        sim.run(until=sim.now + 10.0)
        accepts = recorder.select(category="accept")
        assert accepts
        assert all(e.details["originator"] == 0 for e in accepts)
        assert {e.node for e in accepts} == {1, 2}

    def test_suspect_events_on_mute_attack(self):
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, nodes, recorder = traced_network(
            positions, behaviors={2: MuteBehavior()})
        sim.run(until=8.0)
        for i in range(8):
            nodes[0].broadcast(f"p{i}".encode())
            sim.run(until=sim.now + 3.0)
        suspects = recorder.select(category="suspect")
        assert any(e.details["target"] == 2 for e in suspects)

    def test_overlay_status_flips_recorded(self):
        sim, nodes, recorder = traced_network(line_coords(4, 80.0))
        sim.run(until=10.0)
        flips = recorder.select(category="overlay")
        assert flips  # somebody elected itself during convergence

    def test_event_ordering_monotone(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=5.0)
        times = [event.time for event in recorder.events]
        assert times == sorted(times)


class TestFilteringAndQuerying:
    def test_category_filter(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0),
                                              categories=["accept"])
        sim.run(until=8.0)
        nodes[0].broadcast(b"x")
        sim.run(until=sim.now + 8.0)
        assert set(recorder.counts()) <= {"accept"}

    def test_unknown_category_rejected(self):
        sim, nodes, _ = traced_network(line_coords(2, 80.0))
        with pytest.raises(ValueError):
            TraceRecorder(sim, categories=["quantum"])

    def test_select_by_node_and_window(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=6.0)
        node1_events = recorder.select(node=1)
        assert node1_events
        assert all(e.node == 1 for e in node1_events)
        early = recorder.select(until=2.0)
        assert all(e.time <= 2.0 for e in early)

    def test_first_with_match(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=8.0)
        nodes[0].broadcast(b"x")
        sim.run(until=sim.now + 8.0)
        event = recorder.first("accept", originator=0)
        assert event is not None
        assert event.details["seq"] == 1
        assert recorder.first("accept", originator=99) is None

    def test_capacity_bound(self):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0),
                                              capacity=10)
        sim.run(until=20.0)
        assert len(recorder.events) == 10
        assert recorder.dropped > 0

    def test_clear(self):
        sim, nodes, recorder = traced_network(line_coords(2, 80.0))
        sim.run(until=3.0)
        recorder.clear()
        assert recorder.events == []
        assert recorder.dropped == 0


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        sim, nodes, recorder = traced_network(line_coords(3, 80.0))
        sim.run(until=5.0)
        path = tmp_path / "trace.jsonl"
        count = recorder.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(recorder.events)
        parsed = json.loads(lines[0])
        assert {"time", "category", "node"} <= set(parsed)

    def test_seq_keeps_same_microsecond_events_distinct(self, tmp_path):
        # Regression: ``to_dict`` rounds ``time`` to 6 digits, so events
        # closer together than a microsecond used to export as
        # indistinguishable rows.  The monotonic ``seq`` keeps the order
        # total and re-importable.
        from repro.des.kernel import Simulator

        sim = Simulator()
        recorder = TraceRecorder(sim)
        for offset in (1.0000001, 1.0000002, 1.0000004):
            sim.schedule_at(offset, recorder.record, "tx", 0)
        sim.run()
        dicts = [event.to_dict() for event in recorder.events]
        assert {d["time"] for d in dicts} == {1.0}   # rounding collapsed
        assert [d["seq"] for d in dicts] == [1, 2, 3]
        assert len({json.dumps(d) for d in dicts}) == 3
        path = tmp_path / "ties.jsonl"
        recorder.to_jsonl(str(path))
        reloaded = [json.loads(line)
                    for line in path.read_text().splitlines()]
        assert sorted(reloaded, key=lambda d: d["seq"]) == dicts

    def test_seq_resets_with_clear(self):
        from repro.des.kernel import Simulator

        sim = Simulator()
        recorder = TraceRecorder(sim)
        recorder.record("tx", 0)
        recorder.clear()
        recorder.record("tx", 0)
        assert recorder.events[0].seq == 1


class TestObservabilityCategories:
    """Category filtering across the categories added for repro.obs
    (``span``, ``metric``, ``checkpoint``)."""

    def make_recorder(self, categories=None):
        from repro.des.kernel import Simulator

        sim = Simulator()
        return sim, TraceRecorder(sim, categories=categories)

    def test_new_categories_are_known(self):
        assert {"span", "metric", "checkpoint"} <= \
            set(TraceRecorder.ALL_CATEGORIES)

    def test_span_only_filter(self):
        _, recorder = self.make_recorder(categories=["span"])
        recorder.record("span", 1, span="0:1/1/1", phase="rx")
        recorder.record("metric", -1, queue_depth_total=2)
        recorder.record_checkpoint("snap.ckpt")
        assert recorder.counts() == {"span": 1}

    def test_obs_fanin_respects_recorder_filter(self):
        from repro.des.kernel import Simulator
        from repro.obs import ObsConfig, ObsContext

        sim = Simulator()
        ctx = ObsContext(ObsConfig(), sim=sim)
        recorder = TraceRecorder(sim, categories=["metric", "checkpoint"])
        ctx.attach_recorder(recorder)
        ctx.span("rx", 1, msg=(0, 1))           # filtered out
        recorder.record("metric", -1, deliveries_total=1.0)
        recorder.record_checkpoint("snap.ckpt", events_fired=42)
        assert recorder.counts() == {"metric": 1, "checkpoint": 1}
        # The context itself still kept the span: the recorder filter
        # governs the merged stream only.
        assert len(ctx.spans) == 1

    def test_span_fanin_carries_identity_and_detail(self):
        from repro.des.kernel import Simulator
        from repro.obs import ObsConfig, ObsContext

        sim = Simulator()
        ctx = ObsContext(ObsConfig(), sim=sim)
        recorder = TraceRecorder(sim, categories=["span"])
        ctx.attach_recorder(recorder)
        sid = ctx.span("deliver", 2, msg=(0, 1), sender=1)
        (event,) = recorder.events
        assert event.category == "span" and event.node == 2
        assert event.details["span"] == sid
        assert event.details["phase"] == "deliver"
        assert event.details["msg"] == "0:1"
        assert event.details["sender"] == 1

    def test_checkpoint_events_are_run_level(self):
        _, recorder = self.make_recorder(categories=["checkpoint"])
        recorder.record_checkpoint("a.ckpt", events_fired=7)
        (event,) = recorder.events
        assert event.node == -1
        assert event.details == {"path": "a.ckpt", "events_fired": 7}
