"""The committed corpus replays green.

Every ``corpus/*.json`` is a minimal reproducer a fuzzing campaign (or a
hand seed) shrank and verified; this module replays each one against the
current tree and asserts its recorded failure signature still
reproduces.  A regression that silences one of these — an oracle that
stops seeing forged payloads, a recovery path that no longer clears
delivered state — turns a green corpus entry red.
"""

import os

import pytest

from repro.fuzz import load_corpus, replay, write_entry

pytestmark = pytest.mark.fuzz

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def entry_id(item):
    path, entry = item
    return f"{os.path.basename(path)[:8]}-{'+'.join(entry.signature)}"


def test_corpus_is_committed_and_covers_the_planted_invariants():
    assert CORPUS, f"no corpus entries under {CORPUS_DIR}"
    signatures = {entry.signature for _, entry in CORPUS}
    assert ("forged_payload",) in signatures
    assert ("duplicate_delivery",) in signatures
    assert ("buffer_bound",) in signatures


@pytest.mark.parametrize("item", CORPUS, ids=entry_id)
def test_corpus_entry_reproduces(item):
    path, entry = item
    verdict = replay(entry)
    assert verdict["reproduced"], (
        f"{os.path.basename(path)}: recorded signature {entry.signature} "
        f"no longer reproduces (got {verdict['signature']})")


@pytest.mark.parametrize("item", CORPUS, ids=entry_id)
def test_corpus_entry_is_content_addressed(item):
    """File name matches the entry's content digest, and rewriting the
    entry is a byte-identical no-op."""
    path, entry = item
    assert os.path.basename(path) == f"{entry.digest()}.json"
    with open(path) as handle:
        assert handle.read() == entry.to_json() + "\n"


def test_write_entry_is_idempotent(tmp_path):
    _, entry = CORPUS[0]
    first = write_entry(entry, str(tmp_path))
    before = os.path.getmtime(first)
    second = write_entry(entry, str(tmp_path))
    assert first == second
    assert os.path.getmtime(second) == before
    assert len(list(tmp_path.glob("*.json"))) == 1


@pytest.mark.parametrize("item", CORPUS, ids=entry_id)
def test_corpus_entries_are_minimal(item):
    """Seeded reproducers stay small — the corpus is a set of cores, not
    a dumping ground for raw fuzzer output."""
    _, entry = item
    assert len(entry.schedule.events) <= 4
