"""Failure-injection integration tests: crashes, rejoin, late joiners,
partitions — the churn dynamics the paper's ad-hoc setting implies."""

from repro.core.config import ProtocolConfig
from repro.core.node import NetworkNode, NodeStackConfig
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.radio.geometry import Position
from repro.radio.medium import Medium

from tests.helpers import build_network, line_coords


def got(node, msg_id) -> bool:
    return any(rec[2] == msg_id for rec in node.accepted)


class TestCrashFaults:
    def test_crashed_relay_blocks_then_rejoin_recovers(self):
        # Line 0-1-2: relay 1 crashes (radio off), message stalls at 0;
        # relay reboots, the still-advertised gossip heals everything.
        stack = NodeStackConfig(protocol=ProtocolConfig(
            gossip_advertise_ttl=30.0, purge_timeout=60.0))
        sim, medium, nodes, _ = build_network(line_coords(3, 80.0), 100.0,
                                              stack=stack)
        sim.run(until=8.0)
        nodes[1].radio.power_off()
        msg_id = nodes[0].broadcast(b"through the crash")
        sim.run(until=sim.now + 5.0)
        assert not got(nodes[1], msg_id)
        assert not got(nodes[2], msg_id)
        nodes[1].radio.power_on()
        sim.run(until=sim.now + 25.0)
        assert got(nodes[1], msg_id)
        assert got(nodes[2], msg_id)

    def test_crashed_node_ages_out_of_neighbor_sets(self):
        sim, medium, nodes, _ = build_network(line_coords(3, 80.0), 100.0)
        sim.run(until=8.0)
        assert 1 in nodes[0].neighbors.neighbors()
        nodes[1].radio.power_off()
        sim.run(until=sim.now + 10.0)
        assert 1 not in nodes[0].neighbors.neighbors()

    def test_overlay_reelects_after_member_crash(self):
        sim, medium, nodes, _ = build_network(line_coords(4, 80.0), 100.0)
        sim.run(until=10.0)
        members = [n for n in nodes if n.overlay.in_overlay]
        interior = [n for n in members if n.node_id in (1, 2)]
        if not interior:
            return  # election picked only the ends; nothing to crash
        victim = interior[0]
        victim.radio.power_off()
        sim.run(until=sim.now + 15.0)
        alive_members = {n.node_id for n in nodes
                         if n is not victim and n.overlay.in_overlay}
        # Someone (re-)covers the victim's side of the line.
        assert alive_members


class TestLateJoiner:
    def test_joiner_recovers_recent_messages_via_gossip(self):
        stack = NodeStackConfig(protocol=ProtocolConfig(
            gossip_advertise_ttl=30.0, purge_timeout=60.0))
        sim = Simulator()
        streams = StreamFactory(17)
        medium = Medium(sim, streams.stream("medium"))
        directory = KeyDirectory(HmacScheme(seed=b"join"))
        coords = line_coords(3, 80.0)
        nodes = [NetworkNode(sim, medium, i, Position(*coords[i]), 100.0,
                             streams, directory, stack)
                 for i in range(3)]
        for node in nodes:
            node.start()
        sim.run(until=8.0)
        msg_id = nodes[0].broadcast(b"before the join")
        sim.run(until=sim.now + 5.0)
        # A fourth node appears next to node 2.
        joiner = NetworkNode(sim, medium, 3, Position(240.0, 0.0), 100.0,
                             streams, directory, stack)
        joiner.start()
        sim.run(until=sim.now + 20.0)
        assert got(joiner, msg_id)

    def test_joiner_misses_purged_messages(self):
        stack = NodeStackConfig(protocol=ProtocolConfig(
            gossip_advertise_ttl=3.0, purge_timeout=4.0, purge_period=1.0))
        sim = Simulator()
        streams = StreamFactory(18)
        medium = Medium(sim, streams.stream("medium"))
        directory = KeyDirectory(HmacScheme(seed=b"join2"))
        coords = line_coords(2, 80.0)
        nodes = [NetworkNode(sim, medium, i, Position(*coords[i]), 100.0,
                             streams, directory, stack)
                 for i in range(2)]
        for node in nodes:
            node.start()
        sim.run(until=8.0)
        msg_id = nodes[0].broadcast(b"ephemeral")
        sim.run(until=sim.now + 10.0)  # well past purge
        joiner = NetworkNode(sim, medium, 2, Position(160.0, 0.0), 100.0,
                             streams, directory, stack)
        joiner.start()
        sim.run(until=sim.now + 15.0)
        # Timeout purging is the paper's explicit trade-off: history is
        # bounded, so the late joiner cannot see pre-purge messages.
        assert not got(joiner, msg_id)


class TestPartitionHeal:
    def test_partition_heals_within_retention(self):
        # 0-1   2-3: bridge node 1 walks away, messages flow only on the
        # left; when it walks back, the right island catches up.
        stack = NodeStackConfig(protocol=ProtocolConfig(
            gossip_advertise_ttl=40.0, purge_timeout=80.0))
        coords = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0), (240.0, 0.0)]
        sim, medium, nodes, _ = build_network(coords, 100.0, stack=stack)
        sim.run(until=8.0)
        home = nodes[1].radio.position
        nodes[1].radio.position = Position(80.0, 5000.0)  # gone
        sim.run(until=sim.now + 6.0)
        msg_id = nodes[0].broadcast(b"across the partition")
        sim.run(until=sim.now + 8.0)
        assert not got(nodes[2], msg_id)
        assert not got(nodes[3], msg_id)
        nodes[1].radio.position = home  # the bridge returns
        sim.run(until=sim.now + 30.0)
        assert got(nodes[1], msg_id)
        assert got(nodes[2], msg_id)
        assert got(nodes[3], msg_id)

    def test_concurrent_broadcasts_in_both_islands_merge(self):
        stack = NodeStackConfig(protocol=ProtocolConfig(
            gossip_advertise_ttl=40.0, purge_timeout=80.0))
        coords = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0), (240.0, 0.0)]
        sim, medium, nodes, _ = build_network(coords, 100.0, stack=stack)
        sim.run(until=8.0)
        home = nodes[1].radio.position
        nodes[1].radio.position = Position(80.0, 5000.0)
        sim.run(until=sim.now + 6.0)
        left = nodes[0].broadcast(b"left island")
        right = nodes[3].broadcast(b"right island")
        sim.run(until=sim.now + 8.0)
        nodes[1].radio.position = home
        sim.run(until=sim.now + 35.0)
        for node in nodes:
            if node.node_id != left.originator:
                assert got(node, left), f"node {node.node_id} missing left"
            if node.node_id != right.originator:
                assert got(node, right), f"node {node.node_id} missing right"
