"""Scale smoke suite (``-m scale``): the two tiers at their own scales.

A packet-level n=2000 experiment on the vectorized medium and a small
packet-vs-fluid cross-validation — fast enough for CI, real enough to
catch a broken fast path or a drifted calibration.  The full scale
curves (n to 10^5) live in ``benchmarks/test_e12_extended_scale.py``.
"""

import pytest

from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.fluid import cross_validate
from repro.workloads.scenarios import ScenarioConfig

pytestmark = pytest.mark.scale


def test_vectorized_n2000_experiment():
    result = run_experiment(ExperimentConfig(
        scenario=ScenarioConfig(n=2000, seed=1),
        protocol="flooding", medium="vectorized",
        message_count=1, message_interval=1.0, warmup=2.0, drain=8.0))
    assert result.n == 2000
    assert result.delivery_ratio > 0.95
    # Flooding: every correct node relays once.
    assert result.transmissions_per_broadcast > 1500


def test_fluid_cross_validation_stays_calibrated():
    config = ExperimentConfig(
        scenario=ScenarioConfig(n=80, seed=2), protocol="flooding",
        medium="vectorized", message_count=2, message_interval=1.5,
        warmup=6.0, drain=10.0)
    rows = cross_validate(config, ns=(80, 160))
    assert [row["n"] for row in rows] == [80, 160]
    for row in rows:
        assert row["abs_error"] <= 0.05, row
