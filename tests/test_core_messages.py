"""Unit tests for the protocol wire messages."""

import pytest

from repro.core.messages import (
    DataMessage,
    FindMissingMessage,
    GossipMessage,
    GossipPacket,
    MessageId,
    RequestMessage,
)
from repro.crypto.keystore import HmacScheme, KeyDirectory


@pytest.fixture
def directory():
    return KeyDirectory(HmacScheme(seed=b"msg"))


@pytest.fixture
def signers(directory):
    return {i: directory.issue(i) for i in (1, 2, 3)}


class TestDataMessage:
    def test_create_and_verify(self, directory, signers):
        message = DataMessage.create(signers[1], 7, b"payload")
        assert message.msg_id == MessageId(1, 7)
        assert message.verify(directory)

    def test_payload_tamper_detected(self, directory, signers):
        message = DataMessage.create(signers[1], 7, b"payload")
        tampered = DataMessage(msg_id=message.msg_id, payload=b"PAYLOAD",
                               signature=message.signature)
        assert not tampered.verify(directory)

    def test_originator_swap_detected(self, directory, signers):
        message = DataMessage.create(signers[1], 7, b"payload")
        forged = DataMessage(msg_id=MessageId(2, 7), payload=b"payload",
                             signature=message.signature)
        assert not forged.verify(directory)

    def test_seq_tamper_detected(self, directory, signers):
        message = DataMessage.create(signers[1], 7, b"payload")
        forged = DataMessage(msg_id=MessageId(1, 8), payload=b"payload",
                             signature=message.signature)
        assert not forged.verify(directory)

    def test_ttl_outside_signature(self, directory, signers):
        # TTL mutates in flight and must not break the signature.
        message = DataMessage.create(signers[1], 7, b"payload", ttl=1)
        assert message.with_ttl(2).verify(directory)

    def test_header_fields(self, signers):
        message = DataMessage.create(signers[1], 7, b"x")
        assert message.header == {"type": "data", "originator": 1, "seq": 7}

    def test_wire_size_includes_signature(self, directory, signers):
        message = DataMessage.create(signers[1], 7, b"x" * 100)
        size = message.wire_size(directory, header_size=20)
        assert size == 20 + 100 + directory.signature_size

    def test_wire_size_with_piggybacked_gossip(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        message = DataMessage.create(signers[1], 7, b"x" * 100)
        with_gossip = message.with_gossip(gossip)
        plain = message.wire_size(directory, 20, 12)
        loaded = with_gossip.wire_size(directory, 20, 12)
        assert loaded == plain + 12 + directory.signature_size


class TestGossipMessage:
    def test_create_and_verify(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        assert gossip.msg_id == MessageId(1, 7)
        assert gossip.verify(directory)

    def test_forged_gossip_rejected(self, directory, signers):
        # A node cannot mint gossip for another node's message id.
        gossip = GossipMessage.create(signers[2], 7)  # signed by 2
        forged = GossipMessage(msg_id=MessageId(1, 7),
                               signature=gossip.signature)
        assert not forged.verify(directory)

    def test_data_pattern_header_matches_data(self, signers):
        gossip = GossipMessage.create(signers[1], 7)
        data = DataMessage.create(signers[1], 7, b"x")
        assert gossip.data_pattern_header() == data.header

    def test_gossip_packet_size_scales_with_entries(self, directory,
                                                    signers):
        entries = tuple(GossipMessage.create(signers[1], seq)
                        for seq in range(4))
        packet = GossipPacket(entries=entries)
        size = packet.wire_size(directory, header_size=16, entry_size=12)
        assert size == 16 + 4 * (12 + directory.signature_size)
        assert packet.header["count"] == 4


class TestRequestMessage:
    def test_create_and_verify(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        request = RequestMessage.create(signers[2], gossip, target=3)
        assert request.requester == 2
        assert request.target == 3
        assert request.verify(directory)

    def test_requester_swap_detected(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        request = RequestMessage.create(signers[2], gossip, target=3)
        forged = RequestMessage(gossip=gossip, requester=3, target=3,
                                signature=request.signature)
        assert not forged.verify(directory)

    def test_embedded_bad_gossip_detected(self, directory, signers):
        bogus = GossipMessage(msg_id=MessageId(1, 7), signature=b"junk")
        request = RequestMessage.create(signers[2], bogus, target=3)
        assert not request.verify(directory)

    def test_header_identifies_requester(self, signers):
        gossip = GossipMessage.create(signers[1], 7)
        request = RequestMessage.create(signers[2], gossip, target=3)
        assert request.header["requester"] == 2
        assert request.header["originator"] == 1


class TestFindMissingMessage:
    def test_create_and_verify(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        find = FindMissingMessage.create(signers[2], gossip,
                                         claimed_holder=3)
        assert find.initiator == 2
        assert find.claimed_holder == 3
        assert find.ttl == 2
        assert find.verify(directory)

    def test_ttl_decrement_keeps_signature(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        find = FindMissingMessage.create(signers[2], gossip,
                                         claimed_holder=3)
        assert find.with_ttl(1).verify(directory)

    def test_holder_swap_detected(self, directory, signers):
        gossip = GossipMessage.create(signers[1], 7)
        find = FindMissingMessage.create(signers[2], gossip,
                                         claimed_holder=3)
        forged = FindMissingMessage(gossip=gossip, claimed_holder=1,
                                    initiator=2, ttl=2,
                                    signature=find.signature)
        assert not forged.verify(directory)


def test_message_id_ordering_and_equality():
    assert MessageId(1, 2) == MessageId(1, 2)
    assert MessageId(1, 2) != MessageId(2, 1)
    assert MessageId(1, 2) < MessageId(1, 3) < MessageId(2, 0)
