"""Determinism regression tests: identical seeds → identical universes.

The whole evaluation methodology rests on reproducibility — same seed,
same placement, same collisions, same suspicions, same numbers.  These
tests re-run complete simulations and compare full event traces.
"""

from repro.adversary.behaviors import MuteBehavior
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.network import NetworkBuilder
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig


def run_traced(seed):
    net = (NetworkBuilder(seed=seed).diamond()
           .with_behavior(2, MuteBehavior())
           .with_tracing("tx", "rx", "collision", "accept", "suspect")
           .build().warm_up())
    for i in range(4):
        net.nodes[0].broadcast(f"m{i}".encode())
        net.run(3.0)
    net.run(5.0)
    return [(round(e.time, 9), e.category, e.node, tuple(sorted(
        e.details.items()))) for e in net.tracer.events]


class TestTraceDeterminism:
    def test_identical_seeds_identical_traces(self):
        assert run_traced(5) == run_traced(5)

    def test_different_seeds_different_traces(self):
        assert run_traced(5) != run_traced(6)


class TestExperimentDeterminism:
    def test_full_experiment_bitwise_repeatable(self):
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=14, seed=4,
                                    adversaries=AdversaryMix.mute(2)),
            message_count=3, message_interval=1.0, warmup=6.0, drain=10.0)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.physical == b.physical
        assert a.energy == b.energy
        assert a.delivery_ratio == b.delivery_ratio
        assert a.mean_latency == b.mean_latency
        assert a.max_latency == b.max_latency
        assert a.overlay_quality == b.overlay_quality

    def test_mobile_experiment_repeatable(self):
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=12, seed=9, mobility="waypoint"),
            message_count=2, message_interval=1.0, warmup=5.0, drain=8.0)
        assert run_experiment(config).physical \
            == run_experiment(config).physical

    def test_shadowing_experiment_repeatable(self):
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=12, seed=9, propagation="shadowing"),
            message_count=2, message_interval=1.0, warmup=5.0, drain=8.0)
        assert run_experiment(config).physical \
            == run_experiment(config).physical
