"""Encode-once wire-frame cache: byte-equality, bounds, exclusions."""

import pytest

from repro.core import wire
from repro.core.messages import (
    DataMessage,
    FindMissingMessage,
    GossipMessage,
    GossipPacket,
    MessageId,
    RequestMessage,
)
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.radio.neighbors import HelloMessage


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts with an empty default-capacity cache."""
    wire.configure_cache(4096)
    yield
    wire.configure_cache(4096)


@pytest.fixture
def signers():
    directory = KeyDirectory(HmacScheme(seed=b"wire-test"))
    return {i: directory.issue(i) for i in (1, 2, 3)}


def _messages(signers):
    gossip = GossipMessage.create(signers[1], 7)
    return [
        DataMessage.create(signers[1], 7, b"payload", ttl=1),
        GossipPacket(entries=(gossip,)),
        RequestMessage.create(signers[2], gossip, target=3),
        FindMissingMessage.create(signers[3], gossip, claimed_holder=2),
    ]


class TestEncodeCache:
    def test_cached_bytes_equal_uncached(self, signers):
        for message in _messages(signers):
            assert (wire.encode_message(message)
                    == wire.encode_message(message, cache=False))

    def test_wire_size_equal_with_and_without_cache(self, signers):
        for message in _messages(signers):
            assert (wire.wire_size(message)
                    == wire.wire_size(message, cache=False))

    def test_repeat_encoding_hits(self, signers):
        message = _messages(signers)[0]
        wire.encode_message(message)
        wire.encode_message(message)
        hits, misses, size, _ = wire.cache_info()
        assert (hits, misses, size) == (1, 1, 1)

    def test_equal_rebuilt_packet_hits(self, signers):
        """Gossip packets rebuilt from the same entries each period
        compare equal and share one cached encoding."""
        gossip = GossipMessage.create(signers[1], 7)
        first = GossipPacket(entries=(gossip,))
        rebuilt = GossipPacket(entries=(gossip,))
        assert first is not rebuilt
        wire.encode_message(first)
        wire.encode_message(rebuilt)
        hits, misses, _, _ = wire.cache_info()
        assert (hits, misses) == (1, 1)

    def test_roundtrip_through_cache(self, signers):
        for message in _messages(signers):
            wire.encode_message(message)  # populate
            assert wire.decode_message(wire.encode_message(message)) \
                == message

    def test_bounded_capacity_evicts_oldest(self, signers):
        wire.configure_cache(2)
        messages = [DataMessage.create(signers[1], seq, b"p")
                    for seq in range(1, 5)]
        for message in messages:
            wire.encode_message(message)
        _, _, size, capacity = wire.cache_info()
        assert (size, capacity) == (2, 2)
        # The oldest entries were evicted: re-encoding them misses.
        _, misses_before, _, _ = wire.cache_info()
        wire.encode_message(messages[0])
        _, misses_after, _, _ = wire.cache_info()
        assert misses_after == misses_before + 1

    def test_hello_not_cached(self):
        hello = HelloMessage(sender=1, seq=2, extras={"a": 1},
                             signature=b"s")
        first = wire.encode_message(hello)
        second = wire.encode_message(hello)
        assert first == second
        hits, misses, size, _ = wire.cache_info()
        assert (hits, misses, size) == (0, 0, 0)

    def test_cache_false_bypasses(self, signers):
        message = _messages(signers)[0]
        wire.encode_message(message, cache=False)
        wire.encode_message(message, cache=False)
        hits, misses, size, _ = wire.cache_info()
        assert (hits, misses, size) == (0, 0, 0)

    def test_zero_capacity_disables(self, signers):
        wire.configure_cache(0)
        message = _messages(signers)[0]
        assert (wire.encode_message(message)
                == wire.encode_message(message, cache=False))
        hits, misses, size, _ = wire.cache_info()
        assert (hits, misses, size) == (0, 0, 0)

    def test_configure_rejects_negative(self):
        with pytest.raises(ValueError):
            wire.configure_cache(-1)

    def test_distinct_ttls_cache_separately(self, signers):
        """TTL is outside the signature but inside the frame: the cache
        must key on the full message identity, not the signed fields."""
        message = _messages(signers)[0]
        assert (wire.encode_message(message)
                != wire.encode_message(message.with_ttl(2)))
        assert (wire.decode_message(
            wire.encode_message(message.with_ttl(2))).ttl == 2)
