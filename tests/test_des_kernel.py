"""Unit tests for the discrete-event kernel."""

import pytest

from repro.des.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0  # clock advanced to the until bound


def test_run_until_then_resume():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    sim.run()
    assert fired == [1, 5]
    assert sim.now == 5.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_event_active_lifecycle():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert event.active
    sim.run()
    assert not event.active


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_non_finite_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_execution():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule(3.0, outer)
    sim.run()
    assert times == [3.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    assert sim.pending == 1


def test_step_returns_false_when_exhausted():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_fired_counts_executed_only():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.events_fired == 1


def test_clear_drops_pending_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.clear()
    assert sim.pending == 0
    sim.run()
    assert sim.events_fired == 0


def test_pending_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    keep.cancel()
    assert sim.pending == 0


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, True)
    sim.run()
    assert fired == [True]


def test_callback_args_passed_through():
    sim = Simulator()
    captured = []
    sim.schedule(1.0, lambda a, b, c: captured.append((a, b, c)), 1, "x", None)
    sim.run()
    assert captured == [(1, "x", None)]


# ----------------------------------------------------------------------
# run() corner cases: bound interactions and restartability
# ----------------------------------------------------------------------
def test_max_events_combined_with_until():
    # max_events trips first: two events fit the time window but only one
    # may fire.  Pins the documented clock rule — `until` always advances
    # the clock to the bound, even when the event budget cut the run
    # short (only stop() suppresses the jump).
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    sim.schedule(9.0, fired.append, 9)
    sim.run(until=5.0, max_events=1)
    assert fired == [1]
    assert sim.now == 5.0

    # until trips first: the budget allows more events than the window
    # holds; the event at 9.0 stays pending.
    sim.run(max_events=10)
    assert fired == [1, 2, 9]
    assert sim.now == 9.0


def test_stop_then_second_run_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    # A second run() clears the stop flag and drains the remainder.
    sim.run()
    assert fired == [1, 2]
    assert sim.now == 2.0


def test_stop_suppresses_clock_advance_to_until():
    sim = Simulator()
    sim.schedule(1.0, sim.stop)
    sim.run(until=10.0)
    assert sim.now == 1.0  # stopped runs do not jump to the bound


def test_clear_preserves_clock_and_fifo_seq():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    pre_clear = sim.schedule(5.0, lambda: None)
    sim.run(until=3.0)
    sim.clear()
    assert sim.now == 3.0       # the clock survives a clear
    assert sim.pending == 0

    # The FIFO sequence counter also survives a clear: same-instant
    # events scheduled afterwards still fire in schedule order.
    order = []
    sim.schedule(2.0, order.append, "first")
    sim.schedule(2.0, order.append, "second")
    sim.run()
    assert order == ["first", "second"]
    assert pre_clear.time == 5.0  # cleared events are untouched, just dropped


# ----------------------------------------------------------------------
# Transient (slab-allocated) events
# ----------------------------------------------------------------------
def test_transient_events_interleave_fifo_with_regular():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule_transient(1.0, order.append, "b")
    sim.schedule(1.0, order.append, "c")
    sim.schedule_at_transient(1.0, order.append, "d")
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_transient_record_is_recycled_across_firings():
    # A chain of transients scheduled one-at-a-time must start reusing
    # freed records: the n-th schedule can recycle the (n-2)-th record
    # (the (n-1)-th is still in flight when its callback schedules).
    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.schedule_transient(1.0, chain, remaining - 1)

    chain(6)
    sim.run()
    assert sim.events_recycled >= 4
    assert sim.events_fired == 6


def test_transient_validation_matches_schedule():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_transient(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at_transient(0.5, lambda: None)  # in the past


def test_pickled_simulator_drops_the_slab():
    # Snapshot bytes must be a pure function of simulation state, not of
    # allocator history: the free list and recycle counter do not travel.
    import pickle

    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.schedule_transient(1.0, chain, remaining - 1)

    chain(6)
    sim.run()
    assert sim.events_recycled > 0
    clone = pickle.loads(pickle.dumps(sim))
    assert clone.events_recycled == 0
    assert clone.now == sim.now
    # The clone still allocates/recycles transients from scratch.
    fired = []
    clone.schedule_transient(1.0, fired.append, "x")
    clone.run()
    assert fired == ["x"]


def test_snapshot_bytes_independent_of_slab_history():
    import pickle

    def build(transient_first):
        sim = Simulator()
        if transient_first:
            # Burn a transient so the slab has recycle history...
            sim.schedule_transient(0.5, lambda: None)
        else:
            sim.schedule(0.5, lambda: None)
        sim.run()
        return sim

    # ...then bring both sims to the same logical state (same clock,
    # same fired/seq counters are NOT equal here, so compare the states
    # that matter: pickling zeroes the slab either way).
    with_history = pickle.loads(pickle.dumps(build(True)))
    without = pickle.loads(pickle.dumps(build(False)))
    assert with_history.events_recycled == without.events_recycled == 0
