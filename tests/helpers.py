"""Shared test fixtures and fakes."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.core.node import NetworkNode, NodeStackConfig
from repro.core.protocol import (
    ByzantineBroadcastProtocol,
    NodeBehavior,
    StaticOverlayPort,
)
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.fd.mute import MuteConfig, MuteFailureDetector
from repro.fd.trust import TrustFailureDetector
from repro.fd.verbose import VerboseConfig, VerboseFailureDetector
from repro.radio.geometry import Position
from repro.radio.medium import Medium
from repro.radio.packet import BROADCAST, Packet


class FakeTransport:
    """Records protocol sends instead of touching a medium."""

    def __init__(self) -> None:
        self.sent: List[Tuple[Any, int, str, int]] = []

    def send(self, payload, size_bytes: int, kind: str = "data",
             link_dest: int = BROADCAST) -> bool:
        self.sent.append((payload, size_bytes, kind, link_dest))
        return True

    def of_kind(self, kind: str) -> List[Any]:
        return [payload for payload, _, k, _ in self.sent if k == kind]

    def clear(self) -> None:
        self.sent.clear()


class ProtocolHarness:
    """A single protocol instance over a fake transport and static overlay.

    ``node_id`` runs the real protocol; other identities exist only as
    signers so the harness can fabricate authentic traffic from peers.
    """

    def __init__(self, node_id: int = 1, peers=(2, 3, 4, 5),
                 overlay_members=(2, 3), node_in_overlay: bool = False,
                 config: Optional[ProtocolConfig] = None,
                 neighbors: Optional[List[int]] = None):
        self.sim = Simulator()
        self.directory = KeyDirectory(HmacScheme(seed=b"test"))
        self.signers = {i: self.directory.issue(i)
                        for i in (node_id, *peers)}
        self.transport = FakeTransport()
        self.mute = MuteFailureDetector(self.sim, MuteConfig())
        self.verbose = VerboseFailureDetector(self.sim, VerboseConfig())
        self.trust = TrustFailureDetector(self.sim, self.mute, self.verbose)
        members = set(overlay_members)
        if node_in_overlay:
            members.add(node_id)
        self.neighbor_list = list(neighbors if neighbors is not None
                                  else peers)
        self.overlay = StaticOverlayPort(node_id, members,
                                         lambda: list(self.neighbor_list))
        self.accepted: List[Tuple[int, bytes]] = []
        streams = StreamFactory(7)
        self.config = config or ProtocolConfig()
        # Mirror NetworkNode: the protocol verifies through the node's own
        # caching view when the config enables the verify cache.
        proto_directory = self.directory
        if self.config.verify_cache_size > 0:
            proto_directory = self.directory.caching_view(
                self.config.verify_cache_size)
        self.proto_directory = proto_directory
        self.protocol = ByzantineBroadcastProtocol(
            self.sim, node_id, self.transport, proto_directory,
            self.signers[node_id], self.mute, self.verbose, self.trust,
            self.overlay, lambda: list(self.neighbor_list),
            streams.stream("proto"), self.config,
            accept_callback=lambda o, p, m: self.accepted.append((o, p)))

    def deliver(self, payload, sender: int, kind: str = "data",
                size: int = 100) -> None:
        """Hand the protocol a packet as if received over the air."""
        packet = Packet(sender=sender, payload=payload, size_bytes=size,
                        kind=kind)
        self.protocol.handle_packet(packet)

    def run(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)


def build_network(positions: List[Tuple[float, float]], tx_range: float,
                  seed: int = 1, stack: Optional[NodeStackConfig] = None,
                  behaviors: Optional[Dict[int, NodeBehavior]] = None,
                  force_overlay: Optional[Dict[int, bool]] = None):
    """A real multi-node network on a unit-disk medium.

    Returns (sim, medium, nodes, directory).
    """
    sim = Simulator()
    streams = StreamFactory(seed)
    medium = Medium(sim, streams.stream("medium"))
    directory = KeyDirectory(HmacScheme(seed=str(seed).encode()))
    behaviors = behaviors or {}
    force_overlay = force_overlay or {}
    nodes = []
    for node_id, (x, y) in enumerate(positions):
        node = NetworkNode(sim, medium, node_id, Position(x, y), tx_range,
                           streams, directory, stack,
                           behavior=behaviors.get(node_id),
                           force_overlay=force_overlay.get(node_id))
        nodes.append(node)
    for node in nodes:
        node.start()
    return sim, medium, nodes, directory


def line_coords(count: int, spacing: float) -> List[Tuple[float, float]]:
    return [(i * spacing, 0.0) for i in range(count)]


# ----------------------------------------------------------------------
# Hypothesis generators for chaos schedules
# ----------------------------------------------------------------------
#: Behaviour kinds safe to swap in mid-run without extra parameters.
SWAPPABLE_BEHAVIORS = ("mute", "forging", "selective_drop", "gossip_liar",
                      "deaf", "limited_send")


def fault_events(n: int, horizon: float = 6.0, *,
                 include_attackers: bool = True):
    """Strategy yielding one arbitrary :class:`repro.chaos.FaultEvent`.

    Every generated event is valid in *any* order against a byzcast
    network of ``n`` nodes: restarts of never-crashed nodes and stops of
    never-started attackers are no-ops by design, so no cross-event
    constraints are needed.

    ``include_attackers=False`` drops ``attacker_start`` events, which
    need the full byzcast stack (``node.protocol``) — use it when the
    schedule targets arbitrary arena protocols.
    """
    from hypothesis import strategies as st

    from repro.adversary.policies import ATTACKER_KINDS
    from repro.chaos import FaultEvent

    times = st.floats(min_value=0.0, max_value=horizon,
                      allow_nan=False, allow_infinity=False,
                      allow_subnormal=False).map(lambda t: round(t, 3))
    nodes = st.integers(min_value=0, max_value=n - 1)

    def event(action, params=None):
        return st.builds(
            lambda t, node, extra: FaultEvent(
                time=t, node=node, action=action, params=extra),
            times, nodes,
            st.fixed_dictionaries(params) if params else st.just({}))

    choices = [
        event("mute"),
        event("recover"),
        event("crash"),
        event("deaf"),
        event("hear"),
        event("attacker_stop"),
        event("restart", {"reset_state": st.booleans()}),
        event("tx_power", {"factor": st.floats(
            min_value=0.3, max_value=1.0,
            allow_subnormal=False).map(lambda f: round(f, 2))}),
        event("behavior", {"kind": st.sampled_from(SWAPPABLE_BEHAVIORS)}),
    ]
    if include_attackers:
        choices.append(
            event("attacker_start", {"kind": st.sampled_from(ATTACKER_KINDS),
                                     "rate_hz": st.sampled_from([2.0, 5.0])}))
    return st.one_of(*choices)


def fault_schedules(n: int, horizon: float = 6.0, max_events: int = 6, *,
                    include_attackers: bool = True):
    """Strategy yielding an arbitrary :class:`repro.chaos.FaultSchedule`."""
    from hypothesis import strategies as st

    from repro.chaos import FaultSchedule

    return st.lists(
        fault_events(n, horizon, include_attackers=include_attackers),
        max_size=max_events,
    ).map(lambda events: FaultSchedule(events=tuple(events)))
