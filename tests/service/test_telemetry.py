"""Service telemetry: /metrics, live progress, graceful-stop requeue.

Covers the operational layer end to end: the Prometheus endpoint is
*parser*-validated (not substring-grepped), the long-poll progress feed
versions correctly, a simulated shutdown signal requeues the running job
with progress persisted, verbose HTTP logs come out as uniform JSONL,
and observe-off records degrade to clean 404s on the series endpoints.
"""

import io
import json
import logging
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import _make_shutdown_handler
from repro.service import CampaignService, make_server
from repro.sim.campaign import parallel_map
from repro.telemetry.log import configure, get_logger
from repro.telemetry.metrics import parse_exposition, sample_value

pytestmark = pytest.mark.service

SPEC = {"protocol": "byzcast", "param": "mute", "values": [0, 1],
        "seeds": [1], "n": 8, "messages": 1, "interval": 1.0,
        "warmup": 4.0, "drain": 6.0}


def get_json(url):
    with urllib.request.urlopen(url) as response:
        return json.load(response)


def _double(value):
    return value * 2


class TestMetricsEndpoint:
    def test_metrics_parse_and_count_jobs(self, server):
        service, base = server
        service.submit(SPEC)
        assert service.run_until_idle() == 1

        request = urllib.request.urlopen(f"{base}/metrics")
        with request as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            families = parse_exposition(response.read().decode())

        assert sample_value(families, "repro_jobs_submitted_total") == 1
        assert sample_value(families, "repro_jobs_completed_total") == 1
        assert sample_value(families, "repro_records_executed_total") == 2
        assert sample_value(families, "repro_configs_total") == 2
        assert sample_value(families, "repro_kernel_events_total") > 0
        assert sample_value(families, "repro_worker_busy") == 0
        assert sample_value(families, "repro_queue_depth") == 0
        hist = families["repro_chunk_seconds"]
        assert hist.kind == "histogram"
        assert hist.value(series="repro_chunk_seconds_count") >= 1

    def test_cache_hit_rate_after_resubmit(self, service):
        service.submit(SPEC)
        service.run_until_idle()
        service.submit(SPEC)
        service.run_until_idle()
        families = parse_exposition(service.metrics_text())
        assert sample_value(families, "repro_cache_hits_total") == 2
        assert sample_value(families, "repro_cache_hit_rate") == 0.5
        # The second job recomputed nothing.
        assert sample_value(families, "repro_records_executed_total") == 2

    def test_failed_job_counted(self, service):
        service.submit({"param": "n", "values": [1]})
        service.run_until_idle()
        families = parse_exposition(service.metrics_text())
        assert sample_value(families, "repro_jobs_failed_total") == 1
        assert sample_value(families, "repro_jobs_completed_total") == 0


class TestProgress:
    def test_immediate_snapshot_and_terminal_short_circuit(self, service):
        job = service.submit(SPEC)
        snap = service.progress(job.id, since=-1, timeout=0.0)
        assert snap["state"] == "queued"
        assert snap["pending"] == 0          # grid not yet expanded
        service.run_until_idle()
        began = time.monotonic()
        done = service.progress(job.id, since=snap["version"] + 10_000,
                                timeout=5.0)
        # Terminal jobs return immediately even with an unseen version.
        assert time.monotonic() - began < 1.0
        assert done["state"] == "done"
        assert done["cache_hits"] + done["executed"] == done["total"] == 2
        assert done["pending"] == 0

    def test_unknown_job_returns_none(self, service):
        assert service.progress("nope", timeout=0.0) is None

    def test_poll_wakes_on_progress_notification(self, service):
        job = service.submit(SPEC)
        version = service.progress(job.id, since=-1,
                                   timeout=0.0)["version"]
        result = {}

        def poll():
            result["payload"] = service.progress(job.id, since=version,
                                                 timeout=10.0)

        thread = threading.Thread(target=poll, daemon=True)
        thread.start()
        time.sleep(0.1)                     # poller is parked on the cond
        service.submit(dict(SPEC, seeds=[2]))   # any change bumps version
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["payload"]["version"] > version

    def test_http_long_poll_route(self, server):
        service, base = server
        job = service.submit(SPEC)
        service.run_until_idle()
        payload = get_json(
            f"{base}/api/jobs/{job.id}/progress?since=-1&timeout=1")
        assert payload["state"] == "done"
        assert payload["total"] == 2

    def test_http_long_poll_errors(self, server):
        service, base = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{base}/api/jobs/missing/progress?timeout=0")
        assert excinfo.value.code == 404
        job = service.submit(SPEC)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{base}/api/jobs/{job.id}/progress?since=pretzel")
        assert excinfo.value.code == 400


class TestGracefulStop:
    def test_stop_flag_requeues_running_job_with_progress(self, service):
        """The SIGTERM path, driven deterministically: the stop flag is
        raised before the scheduler reaches its first chunk boundary, so
        the claimed job must go back to ``queued`` — not failed, not
        cancelled — ready for the next service start."""
        job = service.submit(SPEC)
        service._stop.set()
        processed = service.run_until_idle()
        assert processed == 1
        requeued = service.queue.get(job.id)
        assert requeued.state == "queued"
        assert not requeued.cancel_requested
        assert requeued.error is None
        families = parse_exposition(service.metrics_text())
        assert sample_value(families, "repro_jobs_completed_total") == 0
        assert sample_value(families, "repro_jobs_failed_total") == 0
        assert sample_value(families, "repro_queue_depth") == 1

        # The next start (same directory) finishes the job normally.
        service._stop.clear()
        assert service.run_until_idle() == 1
        finished = service.queue.get(job.id)
        assert finished.state == "done"
        assert finished.executed + finished.cache_hits == 2

    def test_stop_requeues_even_mid_job(self, tmp_path):
        """With chunk_size=1 the stop lands *between* chunks: executed
        work is persisted on the requeued job and in the store."""
        service = CampaignService(str(tmp_path / "svc"), chunk_size=1)
        job = service.submit(SPEC)
        claimed = service.queue.claim_next()
        assert claimed.id == job.id

        # Run exactly one chunk, then stop before the second.
        original = service.store.campaign.run

        def run_then_stop(configs, **kwargs):
            service._stop.set()
            return original(configs, **kwargs)

        service.store.campaign.run = run_then_stop
        try:
            service._run_job(claimed)
        finally:
            service.store.campaign.run = original

        requeued = service.queue.get(job.id)
        assert requeued.state == "queued"
        assert requeued.executed == 1
        assert len(service.store.keys()) == 1

        service._stop.clear()
        service.run_until_idle()
        finished = service.queue.get(job.id)
        assert finished.state == "done"
        assert len(service.store.keys()) == 2

    def test_shutdown_handler_requests_server_shutdown(self):
        """The ``repro serve`` signal handler: prints which signal it
        got and asks serve_forever to return from *another* thread
        (shutdown() called on the serving thread would deadlock)."""
        called = threading.Event()

        class FakeServer:
            def shutdown(self):
                called.set()

        out = io.StringIO()
        handler = _make_shutdown_handler(FakeServer(), out)
        handler(signal.SIGTERM, None)
        assert called.wait(timeout=5.0)
        assert "received SIGTERM; shutting down" in out.getvalue()

    def test_service_stop_joins_thread_and_requeues(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"))
        service.start(poll=0.05)
        service.stop(timeout=10.0)
        assert service._thread is None
        # Stop is idempotent and safe with nothing running.
        service.stop(timeout=1.0)

    def test_pool_reap_survives_parent_sigterm_handler(self):
        """Pool.terminate() reaps workers with SIGTERM.  With the serve
        shutdown handler installed in the parent, forked workers used to
        inherit it, swallow the reap signal, and hang the pool's join —
        pool_worker_init must reset worker handlers so parallel_map
        returns."""
        previous = signal.signal(signal.SIGTERM, lambda signum, frame: None)
        try:
            done = []
            runner = threading.Thread(
                target=lambda: done.append(
                    parallel_map(_double, [1, 2, 3, 4], workers=2)),
                daemon=True)
            runner.start()
            runner.join(timeout=60.0)
            assert done, "parallel_map hung under a parent SIGTERM handler"
            assert done[0] == [2, 4, 6, 8]
        finally:
            signal.signal(signal.SIGTERM, previous)


class TestStructuredHttpLogs:
    def teardown_method(self):
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_telemetry", False):
                root.removeHandler(handler)

    def test_verbose_requests_log_jsonl(self, tmp_path):
        stream = io.StringIO()
        configure(stream)
        service = CampaignService(str(tmp_path / "svc"))
        httpd = make_server(service, verbose=True)
        host, port = httpd.server_address[:2]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            get_json(f"http://{host}:{port}/api/health")
        finally:
            httpd.shutdown()
            httpd.server_close()
        lines = [json.loads(line)
                 for line in stream.getvalue().splitlines()]
        requests = [line for line in lines
                    if line.get("event") == "http.request"]
        assert requests, lines
        assert "/api/health" in requests[0]["message"]
        assert requests[0]["logger"] == "repro.service.http"

    def test_quiet_by_default(self, server, capsys):
        _, base = server
        get_json(f"{base}/api/health")
        captured = capsys.readouterr()
        assert "api/health" not in captured.err
        assert "api/health" not in captured.out


class TestObserveOffRecords:
    def test_series_endpoints_404_cleanly(self, server):
        """Records produced without ``observe`` have ``metrics: null``;
        the CSV/trace projections must 404 with a JSON error body, never
        KeyError into a 500."""
        service, base = server
        job = service.submit(dict(SPEC, values=[0]))
        service.run_until_idle()
        job = service.queue.get(job.id)
        (key,) = job.keys

        record = get_json(f"{base}/api/records/{key}")
        assert record["metrics"] is None

        for view in ("series.csv", "trace.json"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{base}/api/records/{key}/{view}")
            assert excinfo.value.code == 404
            body = json.load(excinfo.value)
            assert "observe" in body["error"]

    def test_store_projections_return_none(self, service):
        from repro.service.store import ResultStore
        record = {"key": "k", "metrics": None}
        assert ResultStore.series_of(record) is None
        assert ResultStore.series_csv(record) is None
        assert ResultStore.counter_trace(record) is None

    def test_ragged_series_pad_instead_of_raising(self):
        from repro.service.store import ResultStore
        record = {"key": "k", "protocol": "byzcast", "n": 8, "seed": 1,
                  "metrics": {"series": {"time": [0.0, 1.0, 2.0],
                                         "sent": [1.0, 2.0],
                                         "broken": None}}}
        csv = ResultStore.series_csv(record)
        lines = csv.splitlines()
        assert lines[0] == "time,broken,sent"
        assert lines[3] == "2.0,,"          # short + null columns pad
        trace = ResultStore.counter_trace(record)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 2           # stops at the short column
