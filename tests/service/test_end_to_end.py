"""Campaign service end-to-end: the acceptance criteria.

* Submitting an identical sweep spec twice performs zero recomputation —
  the second job is 100% cache hits keyed on ``config_key``.
* Service-produced record files are byte-identical to a serial
  ``Campaign.run`` over the same expanded configs.
* A killed worker's checkpoint is picked up on resubmission — the run
  resumes mid-simulation instead of restarting (proved by forbidding
  ``build_world``), and the finished record matches an uninterrupted
  run's modulo the config block.
* Failures and cancels surface with truthful partial accounting.
"""

import dataclasses
import json
import os
import time
import urllib.request

import pytest

from repro.obs import validate_chrome
from repro.service import CampaignService, SweepSpec
from repro.sim.campaign import Campaign, result_to_record
from repro.sim.checkpoint import CheckpointConfig, checkpoint_path, \
    config_key, write_checkpoint
from repro.sim.experiment import build_world, run_experiment

pytestmark = pytest.mark.service

SPEC = {"protocol": "byzcast", "param": "mute", "values": [0, 1],
        "seeds": [1, 2], "n": 10, "messages": 1, "interval": 1.0,
        "warmup": 4.0, "drain": 6.0}


def read_records(directory):
    """Parsed records by file name, minus the wall-clock ``runtime``
    block — host timing is never part of the determinism contract."""
    records = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name)) as handle:
            record = json.load(handle)
        record.pop("runtime", None)
        records[name] = record
    return records


class TestCacheAndByteIdentity:
    def test_resubmission_is_all_cache_hits(self, service):
        first = service.submit(SPEC)
        assert service.run_until_idle() == 1
        first = service.queue.get(first.id)
        assert first.state == "done"
        assert (first.total, first.cache_hits, first.executed) \
            == (4, 0, 4)

        second = service.submit(SPEC)
        assert service.run_until_idle() == 1
        second = service.queue.get(second.id)
        assert second.state == "done"
        assert (second.total, second.cache_hits, second.executed) \
            == (4, 4, 0)
        assert second.keys == first.keys
        assert service.stats()["records"] == 4

    def test_records_byte_identical_to_serial_campaign(self, service,
                                                       tmp_path):
        service.submit(SPEC)
        service.run_until_idle()

        reference = Campaign(str(tmp_path / "reference"))
        configs = SweepSpec.from_dict(SPEC).expand()
        assert reference.run(configs) == (4, 0)
        assert read_records(service.store.directory) \
            == read_records(reference.directory)

    def test_parallel_service_matches_serial_reference(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"), workers=4)
        service.submit(SPEC)
        service.run_until_idle()
        reference = Campaign(str(tmp_path / "reference"))
        reference.run(SweepSpec.from_dict(SPEC).expand())
        assert read_records(service.store.directory) \
            == read_records(reference.directory)

    def test_overlapping_sub_sweep_hits_shared_cache(self, service):
        service.submit(SPEC)
        service.run_until_idle()
        # A different spec whose grid overlaps half the previous one.
        overlap = dict(SPEC, values=[1, 2])
        job = service.submit(overlap)
        service.run_until_idle()
        job = service.queue.get(job.id)
        assert job.state == "done"
        assert job.total == 4
        assert job.cache_hits == 2       # mute=1 × seeds {1,2} reused
        assert job.executed == 2

    def test_within_job_duplicates_count_as_hits(self, service):
        duplicated = dict(SPEC, param="mute", values=[0, 0], seeds=[1])
        job = service.submit(duplicated)
        service.run_until_idle()
        job = service.queue.get(job.id)
        assert (job.total, job.cache_hits, job.executed) == (2, 1, 1)


class TestCheckpointResume:
    def test_killed_worker_resumes_from_snapshot(self, tmp_path,
                                                 monkeypatch):
        spec = {"protocol": "byzcast", "seeds": [17], "n": 8,
                "messages": 2, "interval": 1.5, "warmup": 3.0,
                "drain": 5.0}
        config = SweepSpec.from_dict(spec).expand()[0]
        key = config_key(config)
        baseline = result_to_record(config, run_experiment(config))
        baseline.pop("config")
        baseline.pop("runtime", None)

        service = CampaignService(str(tmp_path / "svc"), workers=1,
                                  checkpoint_every=1.0)
        # Simulate a SIGTERM-killed worker: a mid-run snapshot left in
        # the service store's checkpoint directory by a
        # checkpoint-attached run, exactly as the service launches them.
        ckpt_dir = os.path.join(service.store.directory, "checkpoints")
        interrupted = dataclasses.replace(
            config, checkpoint=CheckpointConfig(every=1.0,
                                                directory=ckpt_dir))
        world = build_world(interrupted)
        world.sim.run(until=4.5)
        write_checkpoint(world, key, ckpt_dir)

        # Resume must not rebuild the world from scratch.
        import repro.sim.experiment as experiment_module

        def forbid(config):
            raise AssertionError("resubmitted run rebuilt the world "
                                 "instead of resuming its checkpoint")

        monkeypatch.setattr(experiment_module, "build_world", forbid)
        job = service.submit(spec)
        service.run_until_idle()
        job = service.queue.get(job.id)
        assert job.state == "done", job.error
        assert job.executed == 1

        record = service.store.load_key(key)
        record.pop("config")
        record.pop("runtime", None)
        assert record == baseline
        assert not os.path.exists(checkpoint_path(ckpt_dir, key))

    def test_service_restart_requeues_and_finishes_via_cache(self,
                                                             tmp_path):
        directory = str(tmp_path / "svc")
        service = CampaignService(directory)
        job = service.submit(SPEC)
        service.run_until_idle()
        # A second job dies mid-flight: claimed (running) but the
        # process goes away before executing anything.
        second = service.submit(dict(SPEC, seeds=[1, 2, 3]))
        assert service.queue.claim_next().id == second.id

        reborn = CampaignService(directory)
        recovered = reborn.queue.get(second.id)
        assert recovered.state == "queued"
        assert reborn.run_until_idle() == 1
        finished = reborn.queue.get(second.id)
        assert finished.state == "done"
        # Everything the first job computed is reused.
        assert finished.total == 6
        assert finished.cache_hits == 4
        assert finished.executed == 2


class TestFailureAndCancel:
    def test_unsatisfiable_spec_fails_cleanly(self, service):
        job = service.submit({"param": "n", "values": [1]})
        service.run_until_idle()
        job = service.queue.get(job.id)
        assert job.state == "failed"
        assert "at least 2 nodes" in job.error

    def test_worker_failure_keeps_partial_records(self, service,
                                                  monkeypatch):
        import repro.sim.campaign as campaign_module
        real = campaign_module.run_experiment

        def flaky(config):
            if config.scenario.seed == 2:
                raise RuntimeError("worker exploded")
            return real(config)

        monkeypatch.setattr(campaign_module, "run_experiment", flaky)
        spec = dict(SPEC, param=None, values=None, seeds=[1, 2, 3])
        spec = {k: v for k, v in spec.items() if v is not None}
        job = service.submit(spec)
        service.run_until_idle()
        job = service.queue.get(job.id)
        assert job.state == "failed"
        assert "worker exploded" in job.error
        assert job.executed == 1              # seed 1 persisted
        assert len(service.store.keys()) == 1

        # Resubmission after the fault clears picks up the remainder.
        monkeypatch.setattr(campaign_module, "run_experiment", real)
        retry = service.submit(spec)
        service.run_until_idle()
        retry = service.queue.get(retry.id)
        assert retry.state == "done"
        assert (retry.cache_hits, retry.executed) == (1, 2)

    def test_cancel_running_job_stops_at_chunk_boundary(self, service):
        job = service.submit(SPEC)
        claimed = service.queue.claim_next()
        assert claimed.id == job.id
        service.cancel(job.id)
        service._run_job(claimed)
        final = service.queue.get(job.id)
        assert final.state == "cancelled"
        assert final.executed == 0


class TestHttpEndToEnd:
    def test_observed_submission_serves_record_csv_and_trace(self,
                                                             server):
        service, base = server
        service.start(poll=0.05)
        spec = dict(SPEC, values=[0], seeds=[1], observe=True)
        request = urllib.request.Request(
            f"{base}/api/jobs", data=json.dumps(spec).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            job = json.load(response)

        deadline = time.monotonic() + 120.0
        while True:
            with urllib.request.urlopen(
                    f"{base}/api/jobs/{job['id']}") as response:
                job = json.load(response)
            if job["state"] in ("done", "failed", "cancelled"):
                break
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.1)
        assert job["state"] == "done", job["error"]
        (key,) = job["keys"]

        # The record served over HTTP is the stored file, byte for byte.
        with urllib.request.urlopen(
                f"{base}/api/records/{key}") as response:
            served = json.load(response)
        with open(os.path.join(service.store.directory,
                               f"{key}.json")) as handle:
            assert served == json.load(handle)

        with urllib.request.urlopen(
                f"{base}/api/records/{key}/series.csv") as response:
            assert response.headers["Content-Type"].startswith(
                "text/csv")
            header = response.read().decode().splitlines()[0]
        assert header.split(",")[0] == "time"

        with urllib.request.urlopen(
                f"{base}/api/records/{key}/trace.json") as response:
            trace = json.load(response)
        assert validate_chrome(trace) == []
        assert any(event["ph"] == "C"
                   for event in trace["traceEvents"])

        with urllib.request.urlopen(f"{base}/api/stats") as response:
            stats = json.load(response)
        assert stats["records"] == 1
        assert stats["executed"] == 1
