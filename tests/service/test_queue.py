"""JobQueue: persistence, state machine, startup recovery."""

import json
import os

import pytest

from repro.service import JobQueue

pytestmark = pytest.mark.service

SPEC = {"protocols": ["byzcast"], "seeds": [1]}


class TestQueueBasics:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first = queue.submit(SPEC)
        second = queue.submit(SPEC)
        assert first.id == "j000001"
        assert second.id == "j000002"
        assert [job.id for job in queue.jobs()] == [first.id, second.id]

    def test_jobs_persist_across_restart(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(SPEC)
        queue.update(job.id, state="done", executed=3)
        reopened = JobQueue(str(tmp_path))
        again = reopened.get(job.id)
        assert again.state == "done"
        assert again.executed == 3
        # Ids keep counting from where the dead process stopped.
        assert reopened.submit(SPEC).id == "j000002"

    def test_job_files_are_valid_json(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(SPEC)
        path = os.path.join(str(tmp_path), f"{job.id}.json")
        with open(path) as handle:
            assert json.load(handle)["state"] == "queued"

    def test_claim_next_is_fifo_and_flips_to_running(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first = queue.submit(SPEC)
        queue.submit(SPEC)
        claimed = queue.claim_next()
        assert claimed.id == first.id
        assert claimed.state == "running"
        assert queue.claim_next().id == "j000002"
        assert queue.claim_next() is None


class TestCancel:
    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(SPEC)
        assert queue.cancel(job.id).state == "cancelled"

    def test_cancel_running_sets_flag(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(SPEC)
        queue.claim_next()
        cancelled = queue.cancel(job.id)
        assert cancelled.state == "running"
        assert cancelled.cancel_requested

    def test_cancel_terminal_is_noop(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(SPEC)
        queue.update(job.id, state="done")
        assert queue.cancel(job.id).state == "done"
        assert not queue.get(job.id).cancel_requested

    def test_cancel_unknown_returns_none(self, tmp_path):
        assert JobQueue(str(tmp_path)).cancel("j999999") is None


class TestRecovery:
    def test_requeue_running_on_restart(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(SPEC)
        queue.claim_next()
        queue.cancel(job.id)                      # pending cancel too
        reopened = JobQueue(str(tmp_path))
        recovered = reopened.requeue_running()
        assert [j.id for j in recovered] == [job.id]
        fresh = reopened.get(job.id)
        assert fresh.state == "queued"
        assert not fresh.cancel_requested
