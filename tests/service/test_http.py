"""HTTP handler unit tests: routes, error paths, cancel semantics.

The scheduler thread is deliberately NOT running — jobs stay queued, so
every assertion is deterministic.  End-to-end execution through the HTTP
layer lives in test_end_to_end.py.
"""

import json
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.service

SPEC = {"protocol": "byzcast", "seeds": [1], "n": 10,
        "messages": 1, "interval": 1.0, "warmup": 4.0, "drain": 6.0}


def get(base, path):
    with urllib.request.urlopen(base + path) as response:
        return response.status, response.headers, response.read()


def get_json(base, path):
    status, _, body = get(base, path)
    return status, json.loads(body)


def post(base, path, payload=None, raw=None):
    data = raw if raw is not None else json.dumps(payload or {}).encode()
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def error_of(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    exc = excinfo.value
    return exc.code, json.loads(exc.read())


class TestBasicRoutes:
    def test_health(self, server):
        service, base = server
        status, payload = get_json(base, "/api/health")
        assert status == 200
        assert payload["status"] == "ok"

    def test_dashboard_is_html(self, server):
        _, base = server
        status, headers, body = get(base, "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"repro campaign service" in body

    def test_stats_empty_service(self, server):
        _, base = server
        status, payload = get_json(base, "/api/stats")
        assert status == 200
        assert payload["jobs"] == 0
        assert payload["records"] == 0
        assert payload["cache_hit_rate"] is None

    def test_unknown_route_404(self, server):
        _, base = server
        code, payload = error_of(lambda: get(base, "/api/nope"))
        assert code == 404
        assert "no such route" in payload["error"]


class TestJobRoutes:
    def test_submit_queues_job(self, server):
        service, base = server
        status, job = post(base, "/api/jobs", SPEC)
        assert status == 201
        assert job["state"] == "queued"
        assert service.queue.get(job["id"]) is not None
        _, listing = get_json(base, "/api/jobs")
        assert [entry["id"] for entry in listing] == [job["id"]]

    def test_submit_bad_spec_400(self, server):
        _, base = server
        code, payload = error_of(
            lambda: post(base, "/api/jobs", {"protocol": "pigeon"}))
        assert code == 400
        assert "bad spec" in payload["error"]
        code, payload = error_of(
            lambda: post(base, "/api/jobs", {"bogus_knob": 1}))
        assert code == 400
        assert "unknown spec keys" in payload["error"]

    def test_submit_invalid_json_400(self, server):
        _, base = server
        code, payload = error_of(
            lambda: post(base, "/api/jobs", raw=b"{nope"))
        assert code == 400
        assert "not valid JSON" in payload["error"]

    def test_submit_empty_body_400(self, server):
        _, base = server
        code, payload = error_of(
            lambda: post(base, "/api/jobs", raw=b""))
        assert code == 400
        assert "empty request body" in payload["error"]

    def test_unknown_job_404(self, server):
        _, base = server
        code, payload = error_of(
            lambda: get(base, "/api/jobs/j999999"))
        assert code == 404
        assert "no such job" in payload["error"]

    def test_cancel_queued_job(self, server):
        _, base = server
        _, job = post(base, "/api/jobs", SPEC)
        status, cancelled = post(base,
                                 f"/api/jobs/{job['id']}/cancel")
        assert status == 200
        assert cancelled["state"] == "cancelled"
        _, fetched = get_json(base, f"/api/jobs/{job['id']}")
        assert fetched["state"] == "cancelled"

    def test_cancel_unknown_job_404(self, server):
        _, base = server
        code, payload = error_of(
            lambda: post(base, "/api/jobs/j424242/cancel"))
        assert code == 404
        assert "no such job" in payload["error"]


class TestRecordRoutes:
    def test_unknown_record_404(self, server):
        _, base = server
        code, payload = error_of(
            lambda: get(base, "/api/records/ffff000000000000"))
        assert code == 404
        assert "no record" in payload["error"]

    def test_records_listing_empty(self, server):
        _, base = server
        status, payload = get_json(base, "/api/records")
        assert status == 200
        assert payload == []

    def test_series_of_unobserved_record_404(self, server):
        service, base = server
        # Plant a minimal record without metrics directly in the store.
        key = "00ab00ab00ab00ab"
        service.store.campaign._write(key, {"key": key, "metrics": None})
        code, payload = error_of(
            lambda: get(base, f"/api/records/{key}/series.csv"))
        assert code == 404
        assert "no metric series" in payload["error"]
        code, payload = error_of(
            lambda: get(base, f"/api/records/{key}/trace.json"))
        assert code == 404

    def test_unknown_record_subview_404(self, server):
        service, base = server
        key = "00cd00cd00cd00cd"
        service.store.campaign._write(key, {"key": key, "metrics": None})
        code, payload = error_of(
            lambda: get(base, f"/api/records/{key}/nope.bin"))
        assert code == 404
        assert "no such route" in payload["error"]
