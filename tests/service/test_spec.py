"""SweepSpec: validation, expansion order, and CLI key parity."""

import json

import pytest

from repro.cli import _config_from, _scenario_from, build_parser
from repro.service import SpecError, SweepSpec
from repro.sim.checkpoint import config_key

pytestmark = pytest.mark.service


class TestValidation:
    def test_defaults(self):
        spec = SweepSpec.from_dict({})
        assert spec.protocols == ("byzcast",)
        assert spec.param is None
        assert spec.seeds == (1,)

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown spec keys"):
            SweepSpec.from_dict({"protocl": "byzcast"})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SpecError, match="unknown protocol"):
            SweepSpec.from_dict({"protocol": "pigeon"})

    def test_unknown_param_rejected(self):
        with pytest.raises(SpecError, match="unknown param"):
            SweepSpec.from_dict({"param": "banana", "values": [1]})

    def test_values_without_param_rejected(self):
        with pytest.raises(SpecError, match="values given without"):
            SweepSpec.from_dict({"values": [1, 2]})

    def test_param_without_values_rejected(self):
        with pytest.raises(SpecError, match="non-empty values"):
            SweepSpec.from_dict({"param": "n"})

    def test_non_integer_values_rejected(self):
        with pytest.raises(SpecError, match="integers"):
            SweepSpec.from_dict({"param": "n", "values": ["big"]})

    def test_protocol_and_protocols_conflict(self):
        with pytest.raises(SpecError, match="not both"):
            SweepSpec.from_dict({"protocol": "byzcast",
                                 "protocols": ["flooding"]})

    def test_non_object_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            SweepSpec.from_dict([1, 2, 3])

    def test_bad_enum_rejected(self):
        with pytest.raises(SpecError, match="unknown tier"):
            SweepSpec.from_dict({"tier": "quantum"})

    def test_invalid_scenario_surfaces_as_spec_error(self):
        spec = SweepSpec.from_dict({"param": "n", "values": [1]})
        with pytest.raises(SpecError):
            spec.expand()

    def test_roundtrip_and_digest_stable(self):
        data = {"protocol": "flooding", "param": "mute",
                "values": [0, 2], "seeds": [1, 3], "n": 20}
        spec = SweepSpec.from_dict(data)
        again = SweepSpec.from_dict(spec.to_dict())
        assert spec == again
        assert spec.digest() == again.digest()
        assert json.dumps(spec.to_dict())  # JSON-serializable

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="not valid JSON"):
            SweepSpec.from_file(str(path))


class TestExpansion:
    def test_grid_order_protocol_value_seed(self):
        spec = SweepSpec.from_dict({
            "protocols": ["byzcast", "flooding"], "param": "n",
            "values": [10, 12], "seeds": [1, 2]})
        configs = spec.expand()
        assert len(configs) == 8
        grid = [(c.protocol, c.scenario.n, c.scenario.seed)
                for c in configs]
        assert grid == [(p, v, s)
                        for p in ("byzcast", "flooding")
                        for v in (10, 12)
                        for s in (1, 2)]

    def test_single_point_grid_spans_seeds(self):
        spec = SweepSpec.from_dict({"seeds": [4, 5], "n": 11})
        configs = spec.expand()
        assert [(c.scenario.n, c.scenario.seed) for c in configs] \
            == [(11, 4), (11, 5)]

    def test_mute_param_builds_adversary_mix(self):
        spec = SweepSpec.from_dict({"param": "mute", "values": [0, 2]})
        faultfree, faulty = spec.expand()
        assert faultfree.scenario.adversaries.total == 0
        assert faulty.scenario.adversaries.counts == {"mute": 2}

    def test_rival_param_lands_in_knobs(self):
        spec = SweepSpec.from_dict({
            "protocol": "maurer_tixeuil", "param": "cpa_k",
            "values": [0, 1]})
        low, high = spec.expand()
        assert low.rivals.cpa_k == 0
        assert high.rivals.cpa_k == 1

    def test_fixed_rival_knob_applies_to_every_config(self):
        spec = SweepSpec.from_dict({
            "protocol": "dolev", "paths_required": 2, "seeds": [1, 2]})
        for config in spec.expand():
            assert config.rivals.paths_required == 2

    def test_observe_flag_attaches_obs_config(self):
        observed = SweepSpec.from_dict({"observe": True}).expand()[0]
        plain = SweepSpec.from_dict({}).expand()[0]
        assert observed.observe is not None
        assert plain.observe is None
        # observe is an execution knob: same record key either way.
        assert config_key(observed) == config_key(plain)


class TestCliKeyParity:
    """A spec and the equivalent ``repro sweep`` invocation must expand
    to the same config keys — the cache contract between CLI users and
    service clients."""

    def test_mute_sweep_matches_cli_configs(self):
        spec = SweepSpec.from_dict({
            "protocol": "byzcast", "param": "mute", "values": [0, 2],
            "seeds": [1, 2], "n": 18, "messages": 3, "interval": 1.0,
            "warmup": 5.0, "drain": 8.0})
        service_keys = [config_key(c) for c in spec.expand()]

        args = build_parser().parse_args([
            "sweep", "--param", "mute", "--values", "0,2",
            "--seeds", "1,2", "--n", "18", "--messages", "3",
            "--interval", "1.0", "--warmup", "5.0", "--drain", "8.0"])
        cli_keys = []
        for value in (0, 2):
            for seed in (1, 2):
                scenario = _scenario_from(args, mute=value)
                scenario = scenario.with_seed(seed)
                config = _config_from(args, "byzcast", scenario)
                cli_keys.append(config_key(config))
        assert service_keys == cli_keys
