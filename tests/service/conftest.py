"""Shared fixtures for the campaign-service suite."""

import threading

import pytest

from repro.service import CampaignService, make_server


@pytest.fixture
def service(tmp_path):
    """A service over a fresh state directory — scheduler NOT started,
    so tests control execution deterministically via run_until_idle()."""
    return CampaignService(str(tmp_path / "service"), workers=1)


@pytest.fixture
def server(service):
    """The service's HTTP server on an ephemeral port, plus its base
    URL.  Yields ``(service, base_url)``."""
    httpd = make_server(service)
    host, port = httpd.server_address[:2]
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, f"http://{host}:{port}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.stop(timeout=5.0)
