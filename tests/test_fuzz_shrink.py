"""Shrinker unit tests: ddmin finds the planted core, and every accepted
reduction reproduces.

Two layers: synthetic predicates (fast, exercise the ddmin/normalization
machinery exhaustively) and one real run against the planted
``broken_recovery`` fixture (slow path, proves the whole loop — run,
signature, predicate — composes).
"""

import pytest

from repro.chaos import FaultEvent, FaultSchedule
from repro.des.random import StreamFactory
from repro.fuzz import TargetSpec, shrink_events
from repro.fuzz.mutate import ScheduleMutator

pytestmark = pytest.mark.fuzz

N = 10


def noisy_schedule(core, noise_events=28, seed=7, n=N):
    """``core`` buried inside ``noise_events`` arbitrary mutated events."""
    mutator = ScheduleMutator(n, 5.0, StreamFactory(seed).stream("noise"),
                              max_events=noise_events + len(core))
    noise = []
    while len(noise) < noise_events:
        noise.extend(mutator.seed().events)
    return FaultSchedule(
        events=tuple(noise[:noise_events]) + tuple(core)).sorted_by_time()


CORE = (FaultEvent(0.7, N - 1, "crash"),
        FaultEvent(1.9, N - 1, "restart"))


class RecordingPredicate:
    """Wraps a predicate; remembers every schedule it accepted."""

    def __init__(self, predicate):
        self._predicate = predicate
        self.accepted = []
        self.calls = 0

    def __call__(self, schedule):
        self.calls += 1
        verdict = self._predicate(schedule)
        if verdict:
            self.accepted.append(schedule)
        return verdict


def has_core(schedule):
    """Synthetic failure: a crash of node N-1 followed (in time order) by
    a restart of node N-1."""
    crash_at = None
    for event in schedule.sorted_by_time().events:
        if event.node == N - 1 and event.action == "crash":
            crash_at = event.time
        if (event.node == N - 1 and event.action == "restart"
                and crash_at is not None and event.time >= crash_at):
            return True
    return False


def test_thirty_events_shrink_to_two_core_events():
    schedule = noisy_schedule(CORE)
    assert len(schedule.events) == 30
    assert has_core(schedule)
    result = shrink_events(schedule, has_core, budget=500)
    assert len(result.schedule.events) == 2
    actions = sorted((e.action, e.node) for e in result.schedule.events)
    assert actions == [("crash", N - 1), ("restart", N - 1)]
    assert result.original_events == 30


def test_shrinker_never_returns_non_reproducing_schedule():
    """The returned schedule — and every intermediate the shrinker
    accepted — must satisfy the predicate."""
    recorder = RecordingPredicate(has_core)
    result = shrink_events(noisy_schedule(CORE, seed=11), recorder,
                           budget=500)
    assert recorder.accepted, "shrinker accepted nothing"
    assert has_core(result.schedule)
    for accepted in recorder.accepted:
        assert has_core(accepted)
    # The final schedule is one the predicate actually blessed.
    assert result.schedule in recorder.accepted


def test_non_reproducing_input_returned_unchanged():
    schedule = noisy_schedule((), noise_events=6, seed=13)

    def never(_):
        return False

    result = shrink_events(schedule, never)
    assert result.schedule == schedule
    assert result.accepted == 0
    assert result.tests == 1  # only the input check ran


def test_single_event_core_shrinks_to_one():
    core = (FaultEvent(1.3, 2, "mute"),)

    def mutes_node_two(schedule):
        return any(e.node == 2 and e.action == "mute"
                   for e in schedule.events)

    result = shrink_events(noisy_schedule(core, seed=17), mutes_node_two,
                           budget=500)
    assert len(result.schedule.events) == 1
    event = result.schedule.events[0]
    assert (event.action, event.node) == ("mute", 2)
    # Normalization drives the surviving time toward zero.
    assert event.time == 0.0


def test_budget_caps_predicate_executions():
    recorder = RecordingPredicate(has_core)
    shrink_events(noisy_schedule(CORE, seed=19), recorder, budget=10)
    assert recorder.calls <= 10


def test_memoization_never_reruns_a_digest():
    seen = set()

    def pred(schedule):
        digest = schedule.digest()
        assert digest not in seen, "predicate re-executed a digest"
        seen.add(digest)
        return has_core(schedule)

    shrink_events(noisy_schedule(CORE, seed=23), pred, budget=500)


def test_real_broken_recovery_shrinks_to_crash_restart_core():
    """End-to-end: a 30-event schedule that trips the planted
    ``broken_recovery`` bug shrinks to a tiny core that still contains
    the crash→restart pair of node n-1 — and every accepted reduction
    reproduced the original signature."""
    target = TargetSpec(runner="broken_recovery")
    schedule = noisy_schedule(CORE, seed=7)
    baseline = target.signature_of(target.run(schedule))
    assert {"forged_payload", "duplicate_delivery"} <= set(baseline)

    def reproduces(candidate):
        return set(baseline) <= set(
            target.signature_of(target.run(candidate)))

    recorder = RecordingPredicate(reproduces)
    result = shrink_events(schedule, recorder, budget=300)
    assert len(result.schedule.events) <= 3
    actions = {(e.action, e.node) for e in result.schedule.events}
    assert ("crash", N - 1) in actions
    assert ("restart", N - 1) in actions
    for accepted in recorder.accepted:
        assert reproduces(accepted)
