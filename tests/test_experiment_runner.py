"""Tests for the one-call experiment runner, sweeps, and rendering."""

import pytest

from repro.sim.experiment import (
    ExperimentConfig,
    ExperimentResult,
    PROTOCOLS,
    run_experiment,
)
from repro.sim.render import format_rows, format_series, format_table
from repro.sim.sweeps import average_results, run_sweep
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

SMALL = ScenarioConfig(n=12, seed=2)
FAST = dict(message_count=2, message_interval=1.0, warmup=5.0, drain=8.0)


class TestRunExperiment:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_each_protocol_runs_and_delivers(self, protocol):
        config = ExperimentConfig(scenario=SMALL, protocol=protocol, **FAST)
        result = run_experiment(config)
        assert result.protocol == protocol
        assert result.broadcasts == 2
        assert result.delivery_ratio > 0.9
        assert result.physical["transmissions"] > 0

    def test_overlay_quality_reported_for_overlay_protocols(self):
        result = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        assert result.overlay_quality is not None
        assert result.overlay_quality.coverage > 0.9
        flooding = run_experiment(ExperimentConfig(
            scenario=SMALL, protocol="flooding", **FAST))
        assert flooding.overlay_quality is None

    def test_reproducible_given_seed(self):
        a = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        b = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        assert a.physical == b.physical
        assert a.mean_latency == b.mean_latency

    def test_different_seed_differs(self):
        a = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        b = run_experiment(ExperimentConfig(
            scenario=SMALL.with_seed(99), **FAST))
        assert a.physical != b.physical

    def test_byzantine_counted(self):
        scenario = ScenarioConfig(n=12, seed=2,
                                  adversaries=AdversaryMix.mute(2))
        result = run_experiment(ExperimentConfig(scenario=scenario, **FAST))
        assert result.byzantine == 2
        assert result.delivery_ratio > 0.9  # recovery still delivers

    def test_result_row_shape(self):
        result = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        row = result.row()
        assert row["protocol"] == "byzcast"
        assert row["n"] == 12
        assert 0 <= row["delivery"] <= 1

    def test_derived_metrics(self):
        result = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        assert result.protocol_transmissions > 0
        assert result.transmissions_per_broadcast > 0
        assert result.bytes_per_broadcast > 0
        assert result.data_transmissions_per_broadcast > 0

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scenario=SMALL, protocol="carrier-pigeon")

    def test_custom_workload(self):
        from repro.workloads.sources import single_shot
        config = ExperimentConfig(scenario=SMALL, warmup=5.0, drain=8.0,
                                  workload=single_shot(0, 0.0))
        result = run_experiment(config)
        assert result.broadcasts == 1

    def test_shadowing_scenario_runs(self):
        scenario = ScenarioConfig(n=12, seed=2, propagation="shadowing",
                                  shadowing_sigma=0.1, background_loss=0.02)
        result = run_experiment(ExperimentConfig(scenario=scenario, **FAST))
        assert result.delivery_ratio > 0.8

    def test_mobile_scenario_runs(self):
        scenario = ScenarioConfig(n=12, seed=2, mobility="waypoint",
                                  speed_max=1.5)
        result = run_experiment(ExperimentConfig(scenario=scenario, **FAST))
        assert result.broadcasts == 2


class TestSweeps:
    def test_run_sweep_shapes(self):
        points = run_sweep(
            [8, 12],
            lambda n: ExperimentConfig(scenario=SMALL.with_n(n), **FAST),
            seeds=(1, 2))
        assert [p.parameter for p in points] == [8, 12]
        assert all(p.replicates == 2 for p in points)
        assert points[0].result.n == 8

    def test_average_results(self):
        results = [
            run_experiment(ExperimentConfig(
                scenario=SMALL.with_seed(s), **FAST))
            for s in (1, 2)
        ]
        averaged = average_results(results)
        assert averaged.delivery_ratio == pytest.approx(
            (results[0].delivery_ratio + results[1].delivery_ratio) / 2)
        assert averaged.physical["transmissions"] == pytest.approx(
            (results[0].physical["transmissions"]
             + results[1].physical["transmissions"]) / 2)

    def test_average_single_result_identity(self):
        result = run_experiment(ExperimentConfig(scenario=SMALL, **FAST))
        assert average_results([result]) is result

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_results([])


class TestRendering:
    def test_format_table_alignment(self):
        table = format_table(["a", "bee"], [[1, 2.34567], [None, "x"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bee" in lines[0]
        assert "-" in lines[1]
        assert "2.346" in lines[2]
        assert "-" in lines[3]  # None rendered as dash

    def test_format_rows(self):
        rows = [{"x": 1, "y": 2.0}, {"x": 3, "y": None}]
        rendered = format_rows(rows)
        assert "x" in rendered and "y" in rendered

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_series(self):
        rendered = format_series("delivery", [10, 20], [1.0, 0.95],
                                 unit="ratio")
        assert "10→1" in rendered
        assert "ratio" in rendered
