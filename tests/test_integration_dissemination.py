"""End-to-end integration tests: full nodes over a real simulated medium.

These exercise the paper's correctness properties (§2.3) on small networks:
eventual dissemination despite mute overlay nodes, droppers, liars; and
validity despite forgers and impersonators.
"""

import pytest

from repro.adversary.behaviors import (
    ForgingBehavior,
    GossipLiarBehavior,
    ImpersonationBehavior,
    MuteBehavior,
    SelectiveDropBehavior,
)
from repro.core.node import NodeStackConfig
from repro.des.random import RandomStream

from tests.helpers import build_network, line_coords


def delivered_to_all(nodes, msg_id, exclude=()):
    targets = [n for n in nodes
               if n.node_id != msg_id.originator
               and n.node_id not in exclude]
    return all(any(rec[2] == msg_id for rec in node.accepted)
               for node in targets)


def warm_up(sim, seconds=8.0):
    sim.run(until=sim.now + seconds)


class TestFailureFree:
    def test_line_topology_full_delivery(self):
        sim, medium, nodes, _ = build_network(line_coords(5, 80.0), 100.0)
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"hello line")
        sim.run(until=sim.now + 20.0)
        assert delivered_to_all(nodes, msg_id)

    def test_multiple_messages_all_delivered(self):
        sim, medium, nodes, _ = build_network(line_coords(4, 80.0), 100.0)
        warm_up(sim)
        ids = [nodes[0].broadcast(f"msg {i}".encode()) for i in range(5)]
        sim.run(until=sim.now + 25.0)
        for msg_id in ids:
            assert delivered_to_all(nodes, msg_id)

    def test_bidirectional_sources(self):
        sim, medium, nodes, _ = build_network(line_coords(4, 80.0), 100.0)
        warm_up(sim)
        a = nodes[0].broadcast(b"from head")
        b = nodes[3].broadcast(b"from tail")
        sim.run(until=sim.now + 20.0)
        assert delivered_to_all(nodes, a)
        assert delivered_to_all(nodes, b)

    def test_payload_integrity(self):
        sim, medium, nodes, _ = build_network(line_coords(3, 80.0), 100.0)
        payloads = {}
        for node in nodes:
            node.add_accept_listener(
                lambda receiver, orig, payload, mid:
                payloads.setdefault((receiver, mid), payload))
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"exact bytes \x00\xff")
        sim.run(until=sim.now + 15.0)
        received = [v for (r, m), v in payloads.items() if m == msg_id]
        assert received and all(p == b"exact bytes \x00\xff"
                                for p in received)

    def test_accept_at_most_once(self):
        sim, medium, nodes, _ = build_network(line_coords(4, 80.0), 100.0)
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"once")
        sim.run(until=sim.now + 25.0)
        for node in nodes:
            count = sum(1 for rec in node.accepted if rec[2] == msg_id)
            assert count <= 1


class TestMuteOverlayNodes:
    def test_recovery_around_mute_relay(self):
        # Line 0-1-2: node 1 is the only relay and it is mute.  Node 2 is
        # out of node 0's range: only gossip recovery can reach it... but a
        # mute node gossips nothing either, so dissemination must use the
        # TTL-2 path through node 1's *radio silence*: impossible.  Hence
        # we use a diamond: 0 - {1,2} - 3 where 1 is mute.
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, medium, nodes, _ = build_network(
            positions, 100.0, behaviors={1: MuteBehavior()})
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"around the mute node")
        sim.run(until=sim.now + 25.0)
        assert delivered_to_all(nodes, msg_id, exclude={1})

    def test_mute_chain_recovered_by_gossip(self):
        # 0-1-2-3-4 line, middle relay 2 mute: 3 and 4 are cut off from the
        # overlay path and must recover via gossip through ttl-2 floods.
        sim, medium, nodes, _ = build_network(
            line_coords(5, 80.0), 100.0, behaviors={2: MuteBehavior()})
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"past the mute relay")
        sim.run(until=sim.now + 40.0)
        # Nodes 1 (direct) must receive; 3/4 need the ttl-2 recovery path
        # through the mute node's *neighbors* — here only node 2 physically
        # bridges, and it is silent, so 3-4 are unreachable by ANY correct
        # protocol (correct nodes are disconnected).  The paper's
        # assumption (correct nodes connected) is violated; assert exactly
        # the reachable set.
        assert any(rec[2] == msg_id for rec in nodes[1].accepted)
        assert not any(rec[2] == msg_id for rec in nodes[3].accepted)

    def test_mute_node_eventually_suspected_by_neighbors(self):
        # Node 2 has the higher id on the diamond arm, so the CDS election
        # puts it (not node 1) in the overlay — the most adverse spot for a
        # mute fault.  Its refusal to forward strikes the line-10
        # expectations of nodes that recover through node 1.
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, medium, nodes, _ = build_network(
            positions, 100.0, behaviors={2: MuteBehavior()})
        warm_up(sim)
        for i in range(8):
            nodes[0].broadcast(f"probe {i}".encode())
            sim.run(until=sim.now + 3.0)
        sim.run(until=sim.now + 10.0)
        # The suspicion may have aged out by now (the overlay routed around
        # node 2, deliveries normalized, and strikes decayed — the intended
        # recovery cycle), so assert the cumulative evidence instead.
        strikers = [n.node_id for n in nodes if n.node_id != 2
                    and (n.mute.stats.timeouts > 0
                         or n.mute.suspicion_count(2) > 0)]
        assert strikers, "no correct node ever struck the mute overlay node"
        healed = [n.node_id for n in nodes
                  if n.node_id != 2 and n.overlay.in_overlay]
        assert healed, "overlay never re-elected a correct node"


class TestByzantineContent:
    def test_forged_forwards_rejected_and_recovered(self):
        # Diamond: forger on one arm corrupts payloads; other arm honest.
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        rng = RandomStream(5)
        sim, medium, nodes, _ = build_network(
            positions, 100.0, behaviors={2: ForgingBehavior(rng)})
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"authentic payload")
        sim.run(until=sim.now + 25.0)
        assert delivered_to_all(nodes, msg_id, exclude={2})
        for node in nodes:
            for _, orig, mid in node.accepted:
                if mid == msg_id:
                    assert orig == 0

    def test_forger_gets_suspected(self):
        # The forger must sit on the forwarding path: node 2 wins the CDS
        # election on this diamond, so make it the forger.
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        rng = RandomStream(5)
        sim, medium, nodes, _ = build_network(
            positions, 100.0, behaviors={2: ForgingBehavior(rng)})
        warm_up(sim)
        for i in range(4):
            nodes[0].broadcast(f"probe {i}".encode())
            sim.run(until=sim.now + 3.0)
        assert any(2 in n.trust.untrusted_nodes()
                   for n in nodes if n.node_id != 2)

    def test_impersonator_cannot_inject_as_victim(self):
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, medium, nodes, _ = build_network(
            positions, 100.0,
            behaviors={1: ImpersonationBehavior(victim_id=3)})
        warm_up(sim)
        msg_id = nodes[0].broadcast(b"impersonation test")
        sim.run(until=sim.now + 25.0)
        # Validity: nobody accepts anything claiming to originate at 3.
        for node in nodes:
            assert not any(orig == 3 for _, orig, _ in node.accepted)
        assert delivered_to_all(nodes, msg_id, exclude={1})

    def test_selective_dropper_tolerated(self):
        rng = RandomStream(11)
        sim, medium, nodes, _ = build_network(
            line_coords(4, 80.0), 100.0,
            behaviors={1: SelectiveDropBehavior(rng, 0.5)})
        warm_up(sim)
        ids = [nodes[0].broadcast(f"m{i}".encode()) for i in range(3)]
        sim.run(until=sim.now + 40.0)
        for msg_id in ids:
            assert delivered_to_all(nodes, msg_id, exclude={1})

    def test_gossip_liar_suspected(self):
        # The liar gossips but never serves → MUTE expectation on it fires.
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, medium, nodes, _ = build_network(
            positions, 100.0, behaviors={2: GossipLiarBehavior()})
        warm_up(sim)
        for i in range(5):
            nodes[0].broadcast(f"probe {i}".encode())
            sim.run(until=sim.now + 3.0)
        sim.run(until=sim.now + 10.0)
        # Liar does gossip, so some neighbor expected data from it at some
        # point; tolerated if network healed through others, but the liar
        # must never block delivery.
        for node in nodes:
            if node.node_id == 2:
                continue
            assert len(node.accepted) == 5 or node.node_id == 0


class TestMobility:
    def test_delivery_under_waypoint_mobility(self):
        from repro.mobility.waypoint import RandomWaypoint
        from repro.radio.geometry import Area
        sim, medium, nodes, _ = build_network(
            [(50 + 60 * i, 100.0) for i in range(5)], 100.0, seed=4)
        area = Area(350, 200)
        mobility = RandomWaypoint(sim, [n.radio for n in nodes], area,
                                  RandomStream(8), speed_min=0.5,
                                  speed_max=2.0, pause_max=2.0)
        mobility.start()
        warm_up(sim)
        ids = [nodes[0].broadcast(f"m{i}".encode()) for i in range(3)]
        sim.run(until=sim.now + 60.0)
        delivered = sum(delivered_to_all(nodes, msg_id) for msg_id in ids)
        assert delivered >= 2  # dense area: mobility may delay, not kill
