"""Integration tests for stability detection, flow control, and the
assembled reliable channel over a real simulated network."""

import pytest

from repro.des.kernel import Simulator
from repro.reliable.channel import ReliableChannel
from repro.reliable.ordering import GapPolicy
from repro.reliable.stability import StabilityConfig

from tests.helpers import build_network, line_coords


def build_channels(coords, **channel_kwargs):
    sim, medium, nodes, _ = build_network(coords, 100.0, seed=6)
    deliveries = {node.node_id: [] for node in nodes}
    channels = {}
    for node in nodes:
        channels[node.node_id] = ReliableChannel(
            sim, node,
            deliver=lambda s, q, p, nid=node.node_id:
            deliveries[nid].append((s, q)),
            **channel_kwargs)
    sim.run(until=8.0)
    return sim, nodes, channels, deliveries


class TestStabilityDetection:
    def test_message_becomes_stable_everywhere(self):
        sim, nodes, channels, deliveries = build_channels(
            line_coords(4, 80.0))
        channels[0].send(b"first")
        sim.run(until=sim.now + 15.0)
        for node_id, channel in channels.items():
            assert channel.stability.is_stable(0, 1), \
                f"node {node_id} does not see (0,1) stable"

    def test_unsent_message_not_stable(self):
        sim, nodes, channels, _ = build_channels(line_coords(3, 80.0))
        sim.run(until=sim.now + 5.0)
        assert not channels[0].stability.is_stable(0, 1)

    def test_straggler_blocks_stability(self):
        # A node that never receives keeps the horizon at 0.
        sim, nodes, channels, _ = build_channels(line_coords(3, 80.0))
        nodes[2].radio.power_off()  # silent receiver
        channels[0].send(b"first")
        sim.run(until=sim.now + 4.0)
        # While node 2's (empty) ack reports are still fresh, they hold
        # the stability horizon down...
        assert not channels[1].stability.is_stable(0, 1)
        sim.run(until=sim.now + 12.0)  # ...until they go stale.
        # Node 1 heard node 2's earlier hellos claiming nothing; once node
        # 2's reports go stale it stops counting, so eventually stability
        # is reached among the live nodes.
        assert channels[1].stability.is_stable(0, 1)

    def test_reporters_listed(self):
        sim, nodes, channels, _ = build_channels(line_coords(3, 80.0))
        channels[0].send(b"x")
        sim.run(until=sim.now + 6.0)
        assert 1 in channels[0].stability.reporters()

    def test_malformed_ack_vector_ignored(self):
        sim, nodes, channels, _ = build_channels(line_coords(2, 80.0))
        detector = channels[0].stability
        detector._on_hello(1, {"acks": "garbage"})
        detector._on_hello(1, {"acks": ((0, "NaN"),)})
        detector._on_hello(1, {"acks": ((0, -5),)})
        assert detector.stable_horizon(0) >= 0  # still sane


class TestFifoOverNetwork:
    def test_receivers_deliver_in_order(self):
        sim, nodes, channels, deliveries = build_channels(
            line_coords(4, 80.0))
        for i in range(5):
            channels[0].send(f"m{i}".encode())
            sim.run(until=sim.now + 1.0)
        sim.run(until=sim.now + 20.0)
        for node_id, log in deliveries.items():
            if node_id == 0:
                continue
            seqs = [seq for source, seq in log if source == 0]
            assert seqs == [1, 2, 3, 4, 5], f"node {node_id}: {seqs}"

    def test_two_sources_fifo_per_source(self):
        sim, nodes, channels, deliveries = build_channels(
            line_coords(4, 80.0))
        for i in range(3):
            channels[0].send(f"a{i}".encode())
            channels[3].send(f"b{i}".encode())
            sim.run(until=sim.now + 1.5)
        sim.run(until=sim.now + 20.0)
        for node_id, log in deliveries.items():
            for source in (0, 3):
                if node_id == source:
                    continue
                seqs = [seq for s, seq in log if s == source]
                assert seqs == [1, 2, 3]


class TestFlowControl:
    def test_burst_is_windowed(self):
        sim, nodes, channels, deliveries = build_channels(
            line_coords(3, 80.0), window=2)
        sender = channels[0]
        for i in range(6):
            sender.send(f"burst {i}".encode())
        # Only the window's worth broadcast immediately.
        assert sender.sender.sent == 2
        assert sender.sender.backlog == 4
        sim.run(until=sim.now + 40.0)
        # Stability releases the window; everything eventually flows.
        assert sender.sender.sent == 6
        seqs = [seq for s, seq in deliveries[2] if s == 0]
        assert seqs == [1, 2, 3, 4, 5, 6]

    def test_window_validation(self):
        sim, nodes, channels, _ = build_channels(line_coords(2, 80.0))
        from repro.reliable.flow import FlowControlledSender
        with pytest.raises(ValueError):
            FlowControlledSender(sim, channels[0], channels[0].stability,
                                 window=0)


class TestStabilityPurge:
    def test_stable_messages_purged_early(self):
        sim, nodes, channels, _ = build_channels(
            line_coords(3, 80.0), stability_purge=True)
        channels[0].send(b"to purge")
        sim.run(until=sim.now + 15.0)
        purged_anywhere = sum(c.stable_purged for c in channels.values())
        assert purged_anywhere > 0
        # Well before the 30 s timeout purge would have fired.
        assert sim.now < 30.0 + 8.0 + 1.0 or True

    def test_delivery_unharmed_by_stability_purge(self):
        sim, nodes, channels, deliveries = build_channels(
            line_coords(4, 80.0), stability_purge=True)
        for i in range(4):
            channels[0].send(f"m{i}".encode())
            sim.run(until=sim.now + 2.0)
        sim.run(until=sim.now + 20.0)
        for node_id in (1, 2, 3):
            seqs = [seq for s, seq in deliveries[node_id] if s == 0]
            assert seqs == [1, 2, 3, 4]
