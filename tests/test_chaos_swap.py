"""Mid-run behaviour swap and crash/restart semantics.

The chaos timeline's central assumption is that swapping a node's
behaviour (correct → mute → correct) touches only the outgoing/incoming
message filter: protocol state, pending timers, sequence numbers and
failure-detector bookkeeping all survive the swap.  These tests pin that
down at the protocol level and end-to-end.
"""

import pytest

from repro.adversary.behaviors import MuteBehavior
from repro.chaos import FaultEvent, FaultSchedule, mute_onset
from repro.core.messages import DATA, GOSSIP, DataMessage, MessageId
from repro.core.protocol import CorrectBehavior

from tests.helpers import ProtocolHarness, build_network, line_coords


def data_from(harness, peer, seq=1, payload=b"payload", ttl=1):
    return DataMessage.create(harness.signers[peer], seq, payload, ttl=ttl)


class TestProtocolLevelSwap:
    def test_mute_silences_then_recover_restores_forwarding(self):
        h = ProtocolHarness(node_in_overlay=True)
        h.protocol.set_behavior(MuteBehavior())
        h.deliver(data_from(h, peer=2, seq=1), sender=2)
        assert h.transport.of_kind(DATA) == []        # muted: no forward
        assert h.accepted == [(2, b"payload")]        # but still delivers
        h.protocol.set_behavior(None)
        h.deliver(data_from(h, peer=2, seq=2), sender=2)
        assert len(h.transport.of_kind(DATA)) == 1    # forwarding is back

    def test_recover_installs_correct_behavior(self):
        h = ProtocolHarness()
        h.protocol.set_behavior(MuteBehavior())
        h.protocol.set_behavior(None)
        assert isinstance(h.protocol.behavior, CorrectBehavior)

    def test_no_duplicate_delivery_across_swap(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.protocol.set_behavior(MuteBehavior())
        h.deliver(message, sender=3)
        h.protocol.set_behavior(None)
        h.deliver(message, sender=4)
        assert len(h.accepted) == 1
        assert h.protocol.stats.duplicates_ignored == 2

    def test_gossip_timer_survives_mute_window(self):
        h = ProtocolHarness()
        h.protocol.start()
        h.protocol.broadcast(b"hello")
        h.protocol.set_behavior(MuteBehavior())
        h.run(2.0)
        muted_gossip = len(h.transport.of_kind(GOSSIP))
        assert muted_gossip == 0                      # filtered at boundary
        h.protocol.set_behavior(None)
        h.run(2.0)
        # The periodic gossip task kept ticking under mute; recovery alone
        # makes its output reach the transport again — no restart needed.
        assert len(h.transport.of_kind(GOSSIP)) >= 1

    def test_sequence_counter_survives_swap_and_reset(self):
        h = ProtocolHarness()
        assert h.protocol.broadcast(b"a").seq == 1
        h.protocol.set_behavior(MuteBehavior())
        h.protocol.set_behavior(None)
        assert h.protocol.broadcast(b"b").seq == 2
        h.protocol.reset_state()
        # A restarted node must not reuse (originator, seq) ids: receivers
        # still remember them and would drop the new messages as duplicates.
        assert h.protocol.broadcast(b"c").seq == 3

    def test_reset_state_forgets_store(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        assert h.protocol.store.buffered_count == 1
        h.protocol.reset_state()
        assert h.protocol.store.buffered_count == 0
        h.deliver(message, sender=2)                  # redelivery after loss
        assert len(h.accepted) == 2

    def test_mute_suspicion_state_survives_targets_swap(self):
        """FD bookkeeping about *other* nodes is untouched by our swap."""
        h = ProtocolHarness()
        for _ in range(h.mute.config.suspicion_threshold):
            h.mute._strike(9)
        h.protocol.set_behavior(MuteBehavior())
        h.protocol.set_behavior(None)
        assert h.mute.suspected(9)

    def test_mute_reset_forgets_suspicions(self):
        h = ProtocolHarness()
        for _ in range(h.mute.config.suspicion_threshold):
            h.mute._strike(9)
        h.mute.reset()
        assert not h.mute.suspected(9)
        assert h.mute.suspected_nodes() == []


class TestEndToEndSwap:
    def build(self, seed=11):
        # 0 - 1 - 2 line: node 1 is the only relay.
        return build_network(line_coords(3, 70.0), 100.0, seed=seed)

    def test_relay_mute_window_blocks_then_recovery_heals(self):
        sim, medium, nodes, _ = self.build()
        sim.run(until=6.0)                            # overlay settles
        nodes[1].set_behavior(MuteBehavior())
        sim.run(until=7.0)
        nodes[0].broadcast(b"during-mute")
        sim.run(until=9.0)
        accepted_ids = [mid for _, _, mid in nodes[2].accepted]
        assert accepted_ids == []                     # relay muted: blocked
        nodes[1].set_behavior(None)
        sim.run(until=30.0)
        # Recovery machinery (gossip + REQUEST) delivers the muted-window
        # message exactly once after the relay recovers.
        accepted_ids = [mid for _, _, mid in nodes[2].accepted]
        assert accepted_ids == [MessageId(0, 1)]

    def test_no_duplicates_anywhere_after_mute_recover_cycle(self):
        sim, medium, nodes, _ = self.build()
        schedule = mute_onset([1], onset=0.5, recovery=2.5)
        from repro.chaos import ChaosController
        from repro.des.random import StreamFactory
        controller = ChaosController(sim, nodes, schedule, StreamFactory(11))
        sim.run(until=6.0)
        controller.start(at=6.0)
        nodes[0].broadcast(b"m1")
        sim.run(until=12.0)
        nodes[0].broadcast(b"m2")
        sim.run(until=40.0)
        for node in nodes[1:]:
            ids = [mid for _, _, mid in node.accepted]
            assert len(ids) == len(set(ids))          # at-most-once
            assert set(ids) == {MessageId(0, 1), MessageId(0, 2)}

    def test_crash_restart_preserves_radio_liveness(self):
        sim, medium, nodes, _ = self.build()
        sim.run(until=6.0)
        nodes[1].crash()
        assert nodes[1].crashed
        sim.run(until=8.0)
        nodes[1].restart()
        assert not nodes[1].crashed
        assert nodes[1].protocol.store.buffered_count == 0
        sim.run(until=20.0)
        nodes[0].broadcast(b"after-restart")
        sim.run(until=40.0)
        ids = [mid for _, _, mid in nodes[2].accepted]
        assert MessageId(0, 1) in ids                 # relay works again
