"""Unit tests for the CSMA MAC."""

import pytest

from repro.des.kernel import Simulator
from repro.des.random import RandomStream
from repro.radio.geometry import Position
from repro.radio.mac import CsmaMac, MacConfig
from repro.radio.medium import Medium
from repro.radio.packet import Packet
from repro.radio.propagation import UnitDisk


def setup(positions, config=None):
    sim = Simulator()
    medium = Medium(sim, RandomStream(3), UnitDisk())
    inboxes = {}
    macs = {}
    for node_id, (x, y) in positions.items():
        inboxes[node_id] = []
        medium.attach(node_id, lambda x=x, y=y: Position(x, y), 100.0,
                      lambda p, i=node_id: inboxes[i].append(p))
        macs[node_id] = CsmaMac(sim, medium, node_id, RandomStream(node_id),
                                config)
    return sim, medium, macs, inboxes


def packet(sender, size=125, kind="data"):
    return Packet(sender=sender, payload="x", size_bytes=size, kind=kind)


def test_single_send_delivered():
    sim, medium, macs, inboxes = setup({1: (0, 0), 2: (50, 0)})
    assert macs[1].send(packet(1))
    sim.run()
    assert len(inboxes[2]) == 1
    assert macs[1].stats.sent == 1


def test_queue_serializes_sends():
    sim, medium, macs, inboxes = setup({1: (0, 0), 2: (50, 0)})
    for _ in range(5):
        macs[1].send(packet(1))
    sim.run()
    assert len(inboxes[2]) == 5
    assert medium.stats.collisions == 0  # own sends never overlap


def test_queue_overflow_drops():
    config = MacConfig(queue_limit=3)
    sim, medium, macs, _ = setup({1: (0, 0)}, config)
    results = [macs[1].send(packet(1)) for _ in range(5)]
    assert results == [True, True, True, False, False]
    assert macs[1].stats.dropped_queue_full == 2


def test_carrier_sense_defers_until_channel_clear():
    # Node 2 tries to send while node 1's long packet occupies the air.
    sim, medium, macs, inboxes = setup({1: (0, 0), 2: (50, 0), 3: (60, 0)})
    medium.transmit(1, packet(1, size=12500))  # 100 ms airtime
    macs[2].send(packet(2))
    sim.run()
    assert macs[2].stats.busy_samples >= 1
    assert any(p.sender == 2 for p in inboxes[3])


def test_gives_up_after_max_attempts():
    config = MacConfig(max_attempts=2, backoff_base_s=0.0001,
                       backoff_cap_s=0.0002, access_jitter_s=0.0001)
    sim, medium, macs, _ = setup({1: (0, 0), 2: (50, 0)}, config)
    medium.transmit(1, packet(1, size=125000))  # 1 s airtime blocks node 2
    macs[2].send(packet(2))
    sim.run(until=0.5)
    assert macs[2].stats.dropped_max_attempts == 1
    assert macs[2].stats.sent == 0


def test_queue_length_property():
    sim, medium, macs, _ = setup({1: (0, 0)})
    assert macs[1].queue_length == 0
    macs[1].send(packet(1))
    macs[1].send(packet(1))
    assert macs[1].queue_length == 2
    sim.run()
    assert macs[1].queue_length == 0


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        MacConfig(max_attempts=0)
    with pytest.raises(ValueError):
        MacConfig(queue_limit=0)
    with pytest.raises(ValueError):
        MacConfig(backoff_factor=0.5)


def test_continues_after_drop():
    config = MacConfig(max_attempts=1, access_jitter_s=0.0001)
    sim, medium, macs, inboxes = setup({1: (0, 0), 2: (50, 0)}, config)
    medium.transmit(1, packet(1, size=1250))  # 10 ms busy window
    macs[2].send(packet(2, kind="first"))   # dropped: channel busy
    macs[2].send(packet(2, kind="second"))  # dropped too (same busy window)
    sim.run(until=0.02)
    sim.schedule(0.0, lambda: macs[2].send(packet(2, kind="third")))
    sim.run()
    kinds = [p.kind for p in inboxes[1]]
    assert "third" in kinds
