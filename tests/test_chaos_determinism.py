"""Property tests: chaos never breaks determinism.

The contract under test: a seeded experiment with an arbitrary fault
schedule produces byte-identical result records on every invocation —
serial or pooled across worker processes, brute-force or spatial-grid
medium indexing.  Schedules are drawn from the hypothesis generators in
:mod:`tests.helpers`, so every fault action is exercised in arbitrary
combinations and orders.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultEvent, FaultSchedule, OracleConfig
from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.radio.medium import Medium
from repro.sim import ExperimentConfig, run_experiment, run_many
from repro.sim.campaign import result_to_record
from repro.workloads.scenarios import ScenarioConfig

from tests.helpers import fault_schedules

pytestmark = pytest.mark.chaos

N = 9
RELAXED = dict(deadline=None,
               suppress_health_check=[HealthCheck.too_slow,
                                      HealthCheck.data_too_large])

#: Hot-path caches explicitly OFF (the defaults have them ON, so the
#: rest of this module already exercises the cached paths).
CACHES_OFF = NodeStackConfig(
    protocol=ProtocolConfig(verify_cache_size=0, wire_cache=False))


def small_config(schedule, seed, stack=None):
    extra = {"stack": stack} if stack is not None else {}
    return ExperimentConfig(
        scenario=ScenarioConfig(n=N, seed=seed),
        chaos=schedule, oracle=OracleConfig(),
        warmup=4.0, message_count=2, message_interval=1.5, drain=6.0,
        **extra)


def canonical(config, result):
    """The byte string a campaign would persist for this run, minus the
    wall-clock ``runtime`` block (host timing is never deterministic)."""
    record = result_to_record(config, result)
    record.pop("runtime", None)
    return json.dumps(record, sort_keys=True)


@settings(max_examples=8, **RELAXED)
@given(schedule=fault_schedules(N, horizon=5.0, max_events=5),
       seed=st.integers(min_value=1, max_value=10_000))
def test_repeat_runs_byte_identical(schedule, seed):
    config = small_config(schedule, seed)
    first = canonical(config, run_experiment(config))
    second = canonical(config, run_experiment(config))
    assert first == second


@settings(max_examples=3, **RELAXED)
@given(schedule=fault_schedules(N, horizon=5.0, max_events=4),
       seed=st.integers(min_value=1, max_value=10_000))
def test_worker_pool_matches_serial(schedule, seed):
    configs = [small_config(schedule, seed),
               small_config(schedule, seed + 1)]
    serial = [canonical(c, r)
              for c, r in zip(configs, run_many(configs, workers=1))]
    pooled = [canonical(c, r)
              for c, r in zip(configs, run_many(configs, workers=2))]
    assert serial == pooled


@settings(max_examples=4, **RELAXED)
@given(schedule=fault_schedules(N, horizon=5.0, max_events=4),
       seed=st.integers(min_value=1, max_value=10_000))
def test_grid_medium_matches_brute_force(schedule, seed):
    config = small_config(schedule, seed)
    default = Medium.DEFAULT_USE_GRID
    try:
        Medium.DEFAULT_USE_GRID = True
        gridded = canonical(config, run_experiment(config))
        Medium.DEFAULT_USE_GRID = False
        brute = canonical(config, run_experiment(config))
    finally:
        Medium.DEFAULT_USE_GRID = default
    assert gridded == brute


@settings(max_examples=4, **RELAXED)
@given(schedule=fault_schedules(N, horizon=5.0, max_events=4),
       seed=st.integers(min_value=1, max_value=10_000))
def test_cache_toggle_preserves_records(schedule, seed):
    """The hot-path caches are pure memoization: a run with the verify
    and wire caches disabled produces the same record as the default
    cached run, up to the config block (which names the knobs) and the
    key (its hash)."""
    cached_config = small_config(schedule, seed)
    uncached_config = small_config(schedule, seed, stack=CACHES_OFF)

    def stripped(config):
        record = result_to_record(config, run_experiment(config))
        record.pop("key")
        record.pop("config")
        record.pop("runtime", None)
        return json.dumps(record, sort_keys=True)

    assert stripped(cached_config) == stripped(uncached_config)


@settings(max_examples=3, **RELAXED)
@given(schedule=fault_schedules(N, horizon=5.0, max_events=4),
       seed=st.integers(min_value=1, max_value=10_000))
def test_grid_vs_brute_with_caches_off(schedule, seed):
    """The existing grid-vs-brute test runs with caches on (the
    default); this one pins the same equivalence on the uncached path."""
    config = small_config(schedule, seed, stack=CACHES_OFF)
    default = Medium.DEFAULT_USE_GRID
    try:
        Medium.DEFAULT_USE_GRID = True
        gridded = canonical(config, run_experiment(config))
        Medium.DEFAULT_USE_GRID = False
        brute = canonical(config, run_experiment(config))
    finally:
        Medium.DEFAULT_USE_GRID = default
    assert gridded == brute


def test_worker_pool_matches_serial_with_cache_matrix():
    """workers=1 vs workers=4 byte-identity across the cache on/off
    matrix in one task list (caches are per-process module/node state;
    records must not depend on which worker ran which config)."""
    schedule = FaultSchedule(events=(
        FaultEvent(time=1.0, node=7, action="mute"),
        FaultEvent(time=2.0, node=8, action="crash"),
        FaultEvent(time=3.0, node=8, action="restart"),
    ))
    configs = [small_config(schedule, 31),
               small_config(schedule, 31, stack=CACHES_OFF),
               small_config(schedule, 32),
               small_config(schedule, 32, stack=CACHES_OFF)]
    serial = [canonical(c, r)
              for c, r in zip(configs, run_many(configs, workers=1))]
    pooled = [canonical(c, r)
              for c, r in zip(configs, run_many(configs, workers=4))]
    assert serial == pooled


#: A fixed mixed-fault schedule for the observed-determinism matrix.
OBSERVED_SCHEDULE = FaultSchedule(events=(
    FaultEvent(time=1.0, node=7, action="mute"),
    FaultEvent(time=2.0, node=6, action="deaf"),
    FaultEvent(time=3.0, node=8, action="crash"),
    FaultEvent(time=4.0, node=8, action="restart"),
))


def observed(config):
    from dataclasses import replace

    from repro.obs import ObsConfig

    return replace(config, observe=ObsConfig())


def trace_bytes(result):
    """The span stream + metric series as one canonical byte string —
    the byte-identity target of the observability determinism matrix
    (the raw merged recorder stream is *not* compared: checkpoint events
    legitimately differ between resumed and uninterrupted runs)."""
    assert result.trace is not None
    return json.dumps(result.trace, sort_keys=True)


def test_observed_traces_identical_across_worker_counts():
    """workers=1 vs workers=4: span streams, metric series and campaign
    records of observed runs are byte-identical."""
    configs = [observed(small_config(OBSERVED_SCHEDULE, seed))
               for seed in (41, 42, 43, 44)]
    serial = run_many(configs, workers=1)
    pooled = run_many(configs, workers=4)
    assert [trace_bytes(r) for r in serial] == \
        [trace_bytes(r) for r in pooled]
    assert [canonical(c, r) for c, r in zip(configs, serial)] == \
        [canonical(c, r) for c, r in zip(configs, pooled)]


def test_observed_traces_identical_grid_vs_brute():
    """Grid vs brute-force medium indexing: identical span streams —
    including the radio-level collision/loss spans the media emit."""
    config = observed(small_config(OBSERVED_SCHEDULE, 47))
    default = Medium.DEFAULT_USE_GRID
    try:
        Medium.DEFAULT_USE_GRID = True
        gridded = run_experiment(config)
        Medium.DEFAULT_USE_GRID = False
        brute = run_experiment(config)
    finally:
        Medium.DEFAULT_USE_GRID = default
    assert trace_bytes(gridded) == trace_bytes(brute)
    assert canonical(config, gridded) == canonical(config, brute)


def test_observation_does_not_perturb_the_run():
    """An observed run and a plain run of the same config produce the
    same record (modulo the metrics block observation adds and the config
    block that names the knob): recording must never change the run."""
    plain_config = small_config(OBSERVED_SCHEDULE, 53)
    observed_config = observed(plain_config)

    def stripped(config, result):
        record = result_to_record(config, result)
        record.pop("config")
        record.pop("metrics")
        record.pop("runtime", None)
        return json.dumps(record, sort_keys=True)

    plain = run_experiment(plain_config)
    traced = run_experiment(observed_config)
    assert stripped(plain_config, plain) == \
        stripped(observed_config, traced)


def test_fuzz_campaign_byte_identical_across_repeats_and_workers(tmp_path):
    """The fuzzing loop rides on the same determinism contract: a
    fixed-seed campaign produces byte-identical coverage counters and
    corpus files on every invocation and across workers=1 vs 4."""
    from repro.fuzz import FuzzConfig, TargetSpec, fuzz

    def campaign(tag, workers):
        directory = tmp_path / tag
        config = FuzzConfig(
            target=TargetSpec(runner="broken_recovery"),
            iterations=32, batch=8, fuzz_seed=1, workers=workers,
            corpus_dir=str(directory))
        report = fuzz(config).to_dict()
        for failure in report["failures"]:
            failure.pop("path", None)  # embeds the per-tag tmp dir
        files = {p.name: p.read_bytes()
                 for p in directory.glob("*.json")}
        return json.dumps(report, sort_keys=True), files

    serial_report, serial_corpus = campaign("w1", 1)
    pooled_report, pooled_corpus = campaign("w4", 4)
    repeat_report, repeat_corpus = campaign("w1b", 1)
    assert serial_report == pooled_report == repeat_report
    assert serial_corpus == pooled_corpus == repeat_corpus


def test_acceptance_schedule_deterministic_across_workers():
    """The issue's acceptance shape: one schedule touching every fault
    family, identical records across two invocations and across
    workers=1 vs workers=4."""
    schedule = FaultSchedule(events=(
        FaultEvent(time=0.5, node=5, action="attacker_start",
                   params={"kind": "request_flood", "rate_hz": 5.0}),
        FaultEvent(time=1.0, node=7, action="mute"),
        FaultEvent(time=1.5, node=8, action="crash"),
        FaultEvent(time=2.0, node=6, action="deaf"),
        FaultEvent(time=2.5, node=4, action="tx_power",
                   params={"factor": 0.6}),
        FaultEvent(time=3.0, node=3, action="behavior",
                   params={"kind": "forging"}),
        FaultEvent(time=3.5, node=7, action="recover"),
        FaultEvent(time=4.0, node=8, action="restart"),
        FaultEvent(time=4.2, node=6, action="hear"),
        FaultEvent(time=4.5, node=5, action="attacker_stop"),
        FaultEvent(time=5.0, node=3, action="recover"),
    ))
    configs = [small_config(schedule, seed) for seed in (21, 22, 23, 24)]
    once = [canonical(c, r)
            for c, r in zip(configs, run_many(configs, workers=1))]
    again = [canonical(c, r)
             for c, r in zip(configs, run_many(configs, workers=1))]
    pooled = [canonical(c, r)
              for c, r in zip(configs, run_many(configs, workers=4))]
    assert once == again
    assert once == pooled
