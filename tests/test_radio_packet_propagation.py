"""Unit tests for packets and propagation models."""

import pytest

from repro.des.random import RandomStream
from repro.radio.packet import BROADCAST, Packet
from repro.radio.propagation import LogNormalShadowing, UnitDisk


class TestPacket:
    def test_airtime(self):
        p = Packet(sender=1, payload=None, size_bytes=1250)
        assert p.airtime(1_000_000.0) == pytest.approx(0.01)

    def test_airtime_with_preamble(self):
        p = Packet(sender=1, payload=None, size_bytes=1250)
        assert p.airtime(1_000_000.0, preamble_s=0.001) == pytest.approx(0.011)

    def test_broadcast_default(self):
        p = Packet(sender=1, payload=None, size_bytes=10)
        assert p.is_link_broadcast
        assert p.link_dest == BROADCAST

    def test_link_dest(self):
        p = Packet(sender=1, payload=None, size_bytes=10, link_dest=7)
        assert not p.is_link_broadcast

    def test_unique_packet_ids(self):
        a = Packet(sender=1, payload=None, size_bytes=10)
        b = Packet(sender=1, payload=None, size_bytes=10)
        assert a.packet_id != b.packet_id

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(sender=1, payload=None, size_bytes=0)


class TestUnitDisk:
    def test_inside_always_succeeds(self):
        model = UnitDisk()
        rng = RandomStream(1)
        assert all(model.reception_succeeds(d, 100.0, rng)
                   for d in (0.0, 50.0, 99.9))

    def test_boundary_and_outside_fail(self):
        model = UnitDisk()
        rng = RandomStream(1)
        assert not model.reception_succeeds(100.0, 100.0, rng)
        assert not model.reception_succeeds(150.0, 100.0, rng)

    def test_max_reach_equals_range(self):
        assert UnitDisk().max_reach(100.0) == 100.0

    def test_interferes_inside_reach(self):
        model = UnitDisk()
        assert model.interferes(50.0, 100.0)
        assert not model.interferes(150.0, 100.0)


class TestLogNormalShadowing:
    def test_zero_sigma_zero_loss_matches_disk(self):
        model = LogNormalShadowing(sigma=0.0, background_loss=0.0)
        rng = RandomStream(1)
        assert model.reception_succeeds(99.0, 100.0, rng)
        assert not model.reception_succeeds(101.0, 100.0, rng)

    def test_background_loss_one_always_fails(self):
        model = LogNormalShadowing(sigma=0.0, background_loss=1.0 - 1e-12)
        rng = RandomStream(1)
        assert not any(model.reception_succeeds(10.0, 100.0, rng)
                       for _ in range(50))

    def test_max_reach_scaled(self):
        model = LogNormalShadowing(reach_factor=1.5)
        assert model.max_reach(100.0) == 150.0

    def test_no_reception_beyond_max_reach(self):
        model = LogNormalShadowing(sigma=2.0, reach_factor=1.5,
                                   background_loss=0.0)
        rng = RandomStream(1)
        assert not any(model.reception_succeeds(151.0, 100.0, rng)
                       for _ in range(200))

    def test_fading_sometimes_fails_inside_range(self):
        model = LogNormalShadowing(sigma=0.5, background_loss=0.0)
        rng = RandomStream(1)
        outcomes = {model.reception_succeeds(95.0, 100.0, rng)
                    for _ in range(300)}
        assert outcomes == {True, False}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogNormalShadowing(sigma=-1.0)
        with pytest.raises(ValueError):
            LogNormalShadowing(background_loss=1.0)
        with pytest.raises(ValueError):
            LogNormalShadowing(reach_factor=0.5)
