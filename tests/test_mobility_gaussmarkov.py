"""Unit tests for the Gauss-Markov mobility model."""

import math

import pytest

from repro.des.kernel import Simulator
from repro.des.random import RandomStream, StreamFactory
from repro.mobility.gaussmarkov import GaussMarkov
from repro.radio.geometry import Area, Position
from repro.radio.medium import Medium
from repro.radio.propagation import UnitDisk
from repro.radio.radio import Radio


def build(count, area, **kwargs):
    sim = Simulator()
    streams = StreamFactory(13)
    medium = Medium(sim, streams.stream("m"), UnitDisk())
    radios = [Radio(sim, medium, i,
                    Position(area.width / 2, area.height / 2), 100.0,
                    streams.stream(f"mac{i}"))
              for i in range(count)]
    model = GaussMarkov(sim, radios, area, RandomStream(21), **kwargs)
    return sim, radios, model


def test_stays_in_area():
    area = Area(200, 200)
    sim, radios, model = build(3, area, mean_speed=5.0)
    model.start()
    samples = []
    for t in range(1, 120):
        sim.schedule_at(float(t),
                        lambda: samples.extend(r.position for r in radios))
    sim.run(until=120.0)
    assert samples
    assert all(area.contains(p) for p in samples)


def test_movement_happens():
    area = Area(500, 500)
    sim, radios, model = build(1, area, mean_speed=2.0)
    start = radios[0].position
    model.start()
    sim.run(until=30.0)
    assert radios[0].position.distance_to(start) > 1.0


def test_high_alpha_movement_is_smooth():
    """With alpha near 1 successive headings change slowly: the path's
    turning angles stay small compared to a memoryless walk."""
    area = Area(10_000, 10_000)  # huge: no edge steering
    sim, radios, model = build(1, area, mean_speed=3.0, alpha=0.97,
                               heading_sigma=0.3)
    model.start()
    positions = []
    for t in range(1, 100):
        sim.schedule_at(t * 0.5, lambda: positions.append(radios[0].position))
    sim.run(until=50.0)
    turns = []
    for a, b, c in zip(positions, positions[1:], positions[2:]):
        h1 = math.atan2(b.y - a.y, b.x - a.x)
        h2 = math.atan2(c.y - b.y, c.x - b.x)
        turn = abs((h2 - h1 + math.pi) % (2 * math.pi) - math.pi)
        turns.append(turn)
    mean_turn = sum(turns) / len(turns)
    assert mean_turn < 0.6  # radians; a uniform walk averages ~pi/2


def test_speed_never_negative():
    area = Area(1000, 1000)
    sim, radios, model = build(1, area, mean_speed=0.5, speed_sigma=3.0,
                               alpha=0.2)
    model.start()
    sim.run(until=60.0)  # would crash/teleport on negative speeds
    assert area.contains(radios[0].position)


def test_invalid_parameters():
    area = Area(10, 10)
    sim = Simulator()
    with pytest.raises(ValueError):
        GaussMarkov(sim, [], area, RandomStream(1), alpha=1.5)
    with pytest.raises(ValueError):
        GaussMarkov(sim, [], area, RandomStream(1), mean_speed=0.0)


def test_scenario_integration():
    from repro.sim.experiment import ExperimentConfig, run_experiment
    from repro.workloads.scenarios import ScenarioConfig
    scenario = ScenarioConfig(n=10, seed=4, mobility="gaussmarkov",
                              speed_max=2.0)
    result = run_experiment(ExperimentConfig(
        scenario=scenario, message_count=2, message_interval=1.0,
        warmup=5.0, drain=10.0))
    assert result.broadcasts == 2
