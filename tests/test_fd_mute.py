"""Unit tests for the MUTE failure detector (I_mute semantics)."""

import pytest

from repro.des.kernel import Simulator
from repro.fd.events import ANY, ExpectMode, HeaderPattern, SuspicionReason
from repro.fd.mute import MuteConfig, MuteFailureDetector


def make(threshold=1, timeout=2.0, aging_period=1000.0, aging_amount=1):
    sim = Simulator()
    fd = MuteFailureDetector(sim, MuteConfig(
        expect_timeout=timeout, suspicion_threshold=threshold,
        aging_period=aging_period, aging_amount=aging_amount))
    return sim, fd


HEADER = {"type": "data", "originator": 1, "seq": 5}


class TestHeaderPattern:
    def test_exact_match(self):
        assert HeaderPattern(type="data", seq=5).matches(HEADER)

    def test_mismatch(self):
        assert not HeaderPattern(type="gossip").matches(HEADER)

    def test_wildcard(self):
        pattern = HeaderPattern(type="data", seq=ANY)
        assert pattern.matches(HEADER)
        assert pattern.matches({"type": "data", "seq": 99})

    def test_wildcard_requires_field_presence(self):
        assert not HeaderPattern(missing=ANY).matches(HEADER)

    def test_absent_field_no_match(self):
        assert not HeaderPattern(other=1).matches(HEADER)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            HeaderPattern()


class TestExpectations:
    def test_fulfilled_expectation_no_suspicion(self):
        sim, fd = make()
        fd.expect(HeaderPattern(type="data", seq=5), [2], ExpectMode.ONE)
        fd.observe(2, HEADER)
        sim.run()
        assert not fd.suspected(2)
        assert fd.stats.fulfilled == 1

    def test_timeout_raises_strike(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2], ExpectMode.ONE)
        sim.run(until=3.0)
        assert fd.suspected(2)
        assert fd.stats.timeouts == 1

    def test_wrong_header_does_not_fulfill(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2], ExpectMode.ONE)
        fd.observe(2, {"type": "data", "originator": 1, "seq": 6})
        sim.run(until=3.0)
        assert fd.suspected(2)

    def test_wrong_sender_does_not_fulfill(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2], ExpectMode.ONE)
        fd.observe(3, HEADER)
        sim.run(until=3.0)
        assert fd.suspected(2)
        assert not fd.suspected(3)

    def test_one_mode_any_sender_clears_all(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2, 3, 4],
                  ExpectMode.ONE)
        fd.observe(3, HEADER)
        sim.run()
        assert fd.suspected_nodes() == []

    def test_all_mode_stragglers_suspected(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2, 3, 4],
                  ExpectMode.ALL)
        fd.observe(3, HEADER)
        sim.run(until=3.0)
        assert fd.suspected_nodes() == [2, 4]

    def test_all_mode_everyone_sends(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2, 3], ExpectMode.ALL)
        fd.observe(2, HEADER)
        fd.observe(3, HEADER)
        sim.run()
        assert fd.suspected_nodes() == []

    def test_empty_node_set_noop(self):
        sim, fd = make()
        expectation = fd.expect(HeaderPattern(type="data"), [],
                                ExpectMode.ONE)
        assert expectation.fulfilled
        sim.run()
        assert fd.suspected_nodes() == []

    def test_late_observation_does_not_unsuspect(self):
        sim, fd = make(threshold=1, aging_period=100.0)
        fd.expect(HeaderPattern(type="data", seq=5), [2], ExpectMode.ONE)
        sim.run(until=3.0)
        fd.observe(2, HEADER)
        assert fd.suspected(2)  # strikes only decay via aging

    def test_explicit_fulfill_withdraws(self):
        sim, fd = make(threshold=1)
        expectation = fd.expect(HeaderPattern(type="data", seq=5), [2],
                                ExpectMode.ONE)
        fd.fulfill(expectation)
        sim.run()
        assert not fd.suspected(2)

    def test_custom_timeout(self):
        sim, fd = make(threshold=1, timeout=2.0)
        fd.expect(HeaderPattern(type="data", seq=5), [2], ExpectMode.ONE,
                  timeout=10.0)
        sim.run(until=5.0)
        assert not fd.suspected(2)
        sim.run(until=11.0)
        assert fd.suspected(2)


class TestCountingAndAging:
    def test_threshold_requires_multiple_strikes(self):
        sim, fd = make(threshold=3, aging_period=1000.0)
        for seq in range(2):
            fd.expect(HeaderPattern(type="data", seq=seq), [2])
        sim.run(until=3.0)
        assert not fd.suspected(2)
        fd.expect(HeaderPattern(type="data", seq=99), [2])
        sim.run(until=6.0)
        assert fd.suspected(2)
        assert fd.suspicion_count(2) == 3

    def test_aging_rehabilitates(self):
        sim, fd = make(threshold=1, aging_period=5.0, aging_amount=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2])
        sim.run(until=3.0)
        assert fd.suspected(2)
        sim.run(until=11.0)  # two aging ticks
        assert not fd.suspected(2)

    def test_persistently_mute_stays_suspected(self):
        # Strikes arrive faster than aging decays them.
        sim, fd = make(threshold=2, aging_period=10.0, aging_amount=1,
                       timeout=1.0)
        for i in range(30):
            sim.schedule_at(float(i),
                            lambda i=i: fd.expect(
                                HeaderPattern(type="data", seq=i), [2]))
        sim.run(until=29.5)
        assert fd.suspected(2)

    def test_listener_fires_once_at_threshold(self):
        sim, fd = make(threshold=2, aging_period=1000.0)
        events = []
        fd.add_listener(lambda node, reason: events.append((node, reason)))
        for seq in range(3):
            fd.expect(HeaderPattern(type="data", seq=seq), [2])
        sim.run()
        assert events == [(2, SuspicionReason.MUTE)]

    def test_clear_suspicion(self):
        sim, fd = make(threshold=1)
        fd.expect(HeaderPattern(type="data", seq=5), [2])
        sim.run(until=3.0)
        fd.clear_suspicion(2)
        assert not fd.suspected(2)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MuteConfig(expect_timeout=0)
        with pytest.raises(ValueError):
            MuteConfig(suspicion_threshold=0)
        with pytest.raises(ValueError):
            MuteConfig(aging_period=0)
