"""Unit tests for HELLO-based neighbor discovery."""

import pytest

from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.radio.geometry import Position
from repro.radio.medium import Medium
from repro.radio.neighbors import HelloMessage, NeighborService
from repro.radio.packet import Packet
from repro.radio.propagation import UnitDisk
from repro.radio.radio import Radio


def build(positions, signed=True, hello_period=1.0, seed=2):
    sim = Simulator()
    streams = StreamFactory(seed)
    medium = Medium(sim, streams.stream("medium"), UnitDisk())
    directory = KeyDirectory(HmacScheme(seed=b"nbr"))
    services = {}
    radios = {}
    for node_id, (x, y) in positions.items():
        radio = Radio(sim, medium, node_id, Position(x, y), 100.0,
                      streams.stream(f"mac{node_id}"))
        auth = {}
        if signed:
            auth = {"signer": directory.issue(node_id),
                    "directory": directory}
        service = NeighborService(sim, radio,
                                  streams.stream(f"hello{node_id}"),
                                  hello_period=hello_period, **auth)
        radio.set_receiver(service.handle_packet)
        services[node_id] = service
        radios[node_id] = radio
        service.start()
    return sim, services, radios, directory


def test_mutual_discovery():
    sim, services, _, _ = build({1: (0, 0), 2: (50, 0)})
    sim.run(until=3.0)
    assert services[1].neighbors() == [2]
    assert services[2].neighbors() == [1]


def test_out_of_range_not_discovered():
    sim, services, _, _ = build({1: (0, 0), 2: (500, 0)})
    sim.run(until=3.0)
    assert services[1].neighbors() == []


def test_timeout_evicts_departed_neighbor():
    sim, services, radios, _ = build({1: (0, 0), 2: (50, 0)})
    sim.run(until=3.0)
    assert services[1].is_neighbor(2)
    radios[2].position = Position(500, 0)  # walks away
    sim.run(until=10.0)
    assert not services[1].is_neighbor(2)


def test_returning_neighbor_rediscovered():
    sim, services, radios, _ = build({1: (0, 0), 2: (50, 0)})
    sim.run(until=3.0)
    radios[2].position = Position(500, 0)
    sim.run(until=10.0)
    radios[2].position = Position(50, 0)
    sim.run(until=13.0)
    assert services[1].is_neighbor(2)


def test_forged_hello_rejected_when_signed():
    sim, services, radios, directory = build({1: (0, 0), 2: (50, 0)})
    # Node 2 fabricates a HELLO claiming to be node 9 (no valid signature).
    forged = HelloMessage(sender=9, seq=1, extras={}, signature=b"junk")
    radios[2].send(forged, size_bytes=48, kind="hello")
    sim.run(until=2.0)
    assert 9 not in services[1].neighbors()
    assert services[1].bad_signature_count >= 1


def test_unsigned_mode_accepts_plain_hellos():
    sim, services, radios, _ = build({1: (0, 0), 2: (50, 0)}, signed=False)
    sim.run(until=3.0)
    assert services[1].neighbors() == [2]


def test_extras_roundtrip():
    sim, services, _, _ = build({1: (0, 0), 2: (50, 0)})
    received = []
    services[1].add_listener(lambda sender, extras:
                             received.append((sender, extras)))
    services[2].add_extras_provider(lambda: {"k": (1, 2, 3)})
    sim.run(until=3.0)
    assert any(sender == 2 and extras.get("k") == (1, 2, 3)
               for sender, extras in received)


def test_multiple_providers_merge():
    sim, services, _, _ = build({1: (0, 0), 2: (50, 0)})
    received = []
    services[1].add_listener(lambda s, e: received.append(e))
    services[2].add_extras_provider(lambda: {"a": 1})
    services[2].add_extras_provider(lambda: {"b": 2})
    sim.run(until=3.0)
    assert any(e.get("a") == 1 and e.get("b") == 2 for e in received)


def test_last_seen_and_forget():
    sim, services, _, _ = build({1: (0, 0), 2: (50, 0)})
    sim.run(until=3.0)
    assert services[1].last_seen(2) is not None
    services[1].forget(2)
    assert services[1].last_seen(2) is None


def test_handle_packet_ignores_non_hello():
    sim, services, _, _ = build({1: (0, 0)})
    other = Packet(sender=5, payload="not a hello", size_bytes=10)
    assert services[1].handle_packet(other) is False


def test_signer_without_directory_rejected():
    sim = Simulator()
    streams = StreamFactory(1)
    medium = Medium(sim, streams.stream("m"), UnitDisk())
    radio = Radio(sim, medium, 1, Position(0, 0), 100.0,
                  streams.stream("mac"))
    directory = KeyDirectory(HmacScheme(seed=b"x"))
    signer = directory.issue(1)
    with pytest.raises(ValueError):
        NeighborService(sim, radio, streams.stream("h"), signer=signer)


def test_invalid_period_rejected():
    sim = Simulator()
    streams = StreamFactory(1)
    medium = Medium(sim, streams.stream("m"), UnitDisk())
    radio = Radio(sim, medium, 1, Position(0, 0), 100.0,
                  streams.stream("mac"))
    with pytest.raises(ValueError):
        NeighborService(sim, radio, streams.stream("h"), hello_period=0)
