"""Tests for the fault-timeline replay (repro.chaos.ChaosController)."""

import pytest

from repro.adversary.behaviors import MuteBehavior
from repro.core.protocol import CorrectBehavior
from repro.chaos import ChaosController, FaultEvent, FaultSchedule
from repro.des.random import StreamFactory
from tests.helpers import build_network, line_coords


def make_controller(schedule, count=4, spacing=60.0, tx_range=100.0,
                    seed=5):
    sim, medium, nodes, _ = build_network(
        line_coords(count, spacing), tx_range, seed=seed)
    controller = ChaosController(sim, nodes, schedule, StreamFactory(seed))
    return sim, nodes, controller


class TestScheduling:
    def test_events_fire_at_offset_times(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=1, action="mute"),
            FaultEvent(time=3.0, node=1, action="recover"),
        ))
        sim, nodes, controller = make_controller(schedule)
        controller.start(at=2.0)
        sim.run(until=4.0)
        assert [(time, event.action) for time, event in controller.applied] \
            == [(3.0, "mute")]
        sim.run(until=6.0)
        assert [time for time, _ in controller.applied] == [3.0, 5.0]

    def test_unknown_node_rejected_up_front(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=0.0, node=99, action="mute"),))
        with pytest.raises(ValueError, match=r"unknown nodes \[99\]"):
            make_controller(schedule)

    def test_listener_sees_each_applied_event(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=0, action="deaf"),
            FaultEvent(time=2.0, node=0, action="hear"),
        ))
        sim, nodes, controller = make_controller(schedule)
        seen = []
        controller.add_listener(
            lambda time, event: seen.append((time, event.action)))
        controller.start()
        sim.run(until=5.0)
        assert seen == [(1.0, "deaf"), (2.0, "hear")]


class TestBehaviorFaults:
    def test_mute_and_recover_swap_the_behavior(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=2, action="mute"),
            FaultEvent(time=2.0, node=2, action="recover"),
        ))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=1.5)
        assert isinstance(nodes[2].protocol.behavior, MuteBehavior)
        sim.run(until=2.5)
        assert isinstance(nodes[2].protocol.behavior, CorrectBehavior)

    def test_behavior_event_builds_from_kind(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=1, action="behavior",
                       params={"kind": "selective_drop",
                               "drop_probability": 1.0}),))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=2.0)
        behavior = nodes[1].protocol.behavior
        assert type(behavior).__name__ == "SelectiveDropBehavior"


class TestCrashRestart:
    def test_crash_then_restart(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=3, action="crash"),
            FaultEvent(time=4.0, node=3, action="restart"),
        ))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=2.0)
        assert nodes[3].crashed
        sim.run(until=5.0)
        assert not nodes[3].crashed

    def test_restart_without_crash_is_a_noop(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=0, action="restart"),))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=2.0)
        assert not nodes[0].crashed
        assert len(controller.applied) == 1


class TestRadioFaults:
    def test_deaf_and_hear_toggle_the_receive_path(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=1, action="deaf"),
            FaultEvent(time=2.0, node=1, action="hear"),
        ))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=1.5)
        assert nodes[1].radio.deaf
        sim.run(until=2.5)
        assert not nodes[1].radio.deaf

    def test_tx_power_scales_range(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=1, action="tx_power",
                       params={"factor": 0.5}),))
        sim, nodes, controller = make_controller(schedule)
        nominal = nodes[1].radio.tx_range
        controller.start()
        sim.run(until=2.0)
        assert nodes[1].radio.tx_range == pytest.approx(nominal * 0.5)


class TestAttackerLifecycle:
    def test_attacker_started_and_stopped(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=0.5, node=2, action="attacker_start",
                       params={"kind": "request_flood", "rate_hz": 10.0}),
            FaultEvent(time=3.0, node=2, action="attacker_stop"),
        ))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=4.0)
        assert [event.action for _, event in controller.applied] \
            == ["attacker_start", "attacker_stop"]
        assert controller._attackers == {}

    def test_attacker_stop_without_start_is_a_noop(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=1.0, node=0, action="attacker_stop"),))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=2.0)
        assert len(controller.applied) == 1

    def test_crash_stops_the_nodes_attacker(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=0.5, node=2, action="attacker_start",
                       params={"kind": "gossip_flood"}),
            FaultEvent(time=2.0, node=2, action="crash"),
        ))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=3.0)
        assert controller._attackers == {}

    def test_stop_detaches_leftover_attackers(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=0.5, node=1, action="attacker_start",
                       params={"kind": "request_flood"}),))
        sim, nodes, controller = make_controller(schedule)
        controller.start()
        sim.run(until=1.0)
        assert set(controller._attackers) == {1}
        controller.stop()
        assert controller._attackers == {}
