"""Determinism and resume/skip semantics of the parallel campaign runner.

The acceptance bar: a ``workers=4`` campaign must leave the result
directory byte-identical to a serial run of the same sweep — same config
hashes (file names), same JSON bytes — and resuming an interrupted
campaign in parallel must execute only the missing configurations.
"""

import dataclasses
import json
import os

import pytest

from repro.sim.campaign import Campaign, config_key
from repro.sim.experiment import ExperimentConfig, run_experiment, run_many
from repro.sim.sweeps import run_sweep
from repro.workloads.scenarios import ScenarioConfig

FAST = dict(message_count=1, message_interval=1.0, warmup=4.0, drain=6.0)


def make_configs(count=4, n=10):
    return [ExperimentConfig(scenario=ScenarioConfig(n=n, seed=seed),
                             **FAST)
            for seed in range(1, count + 1)]


def read_records(directory):
    """Map file name -> parsed record for every file in a campaign dir,
    minus the wall-clock ``runtime`` block (host timing is never part of
    the determinism contract)."""
    records = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name)) as handle:
            record = json.load(handle)
        record.pop("runtime", None)
        records[name] = record
    return records


class TestParallelCampaign:
    def test_workers4_records_byte_identical_to_serial(self, tmp_path):
        configs = make_configs(4)
        serial = Campaign(str(tmp_path / "serial"))
        parallel = Campaign(str(tmp_path / "parallel"))
        assert serial.run(configs) == (4, 0)
        assert parallel.run(configs, workers=4) == (4, 0)
        serial_records = read_records(serial.directory)
        parallel_records = read_records(parallel.directory)
        assert set(serial_records) == set(parallel_records)
        assert set(serial_records) == {f"{config_key(c)}.json"
                                       for c in configs}
        for name in serial_records:
            assert serial_records[name] == parallel_records[name], name

    def test_interrupted_campaign_resumes_only_missing(self, tmp_path):
        """Simulate an interrupt: the first two configs completed, the
        process died, and the campaign is re-run with workers=2."""
        configs = make_configs(5)
        campaign = Campaign(str(tmp_path / "camp"))
        assert campaign.run(configs[:2]) == (2, 0)   # ... then "crash"
        executed, skipped = campaign.run(configs, workers=2)
        assert (executed, skipped) == (3, 2)
        reference = Campaign(str(tmp_path / "ref"))
        reference.run(configs)
        assert read_records(campaign.directory) \
            == read_records(reference.directory)

    def test_parallel_rerun_skips_everything(self, tmp_path):
        configs = make_configs(3)
        campaign = Campaign(str(tmp_path / "camp"))
        campaign.run(configs, workers=2)
        assert campaign.run(configs, workers=2) == (0, 3)

    def test_force_reruns_in_parallel(self, tmp_path):
        configs = make_configs(3)
        campaign = Campaign(str(tmp_path / "camp"))
        campaign.run(configs)
        before = read_records(campaign.directory)
        executed, skipped = campaign.run(configs, force=True, workers=3)
        assert (executed, skipped) == (3, 0)
        assert read_records(campaign.directory) == before

    def test_progress_reports_every_pending_config(self, tmp_path):
        configs = make_configs(3)
        campaign = Campaign(str(tmp_path / "camp"))
        messages = []
        campaign.run(configs, workers=2, progress=messages.append)
        started = [m for m in messages if m.startswith("running ")]
        finished = [m for m in messages if m.startswith("finished ")]
        assert len(started) == 3
        assert len(finished) == 3

    def test_invalid_workers_rejected(self, tmp_path):
        campaign = Campaign(str(tmp_path / "camp"))
        with pytest.raises(ValueError):
            campaign.run(make_configs(1), workers=0)
        with pytest.raises(ValueError):
            run_many(make_configs(1), workers=0)
        with pytest.raises(ValueError):
            run_sweep([8], lambda n: make_configs(1)[0], workers=-1)


def sans_runtime(result):
    """The result with its wall-clock ``runtime`` block cleared — the
    only field allowed to differ between serial and parallel runs."""
    return dataclasses.replace(result, runtime=None)


class TestParallelSweepAndRunMany:
    def test_run_many_matches_serial_in_order(self):
        configs = make_configs(3, n=8)
        serial = [run_experiment(config) for config in configs]
        parallel = run_many(configs, workers=3)
        assert [sans_runtime(r) for r in parallel] \
            == [sans_runtime(r) for r in serial]

    def test_run_sweep_workers_matches_serial(self):
        def make_config(n):
            return ExperimentConfig(scenario=ScenarioConfig(n=n), **FAST)

        serial = run_sweep([8, 10], make_config, seeds=(1, 2))
        parallel = run_sweep([8, 10], make_config, seeds=(1, 2), workers=4)
        assert len(parallel) == len(serial) == 2
        for a, b in zip(serial, parallel):
            assert a.parameter == b.parameter
            assert a.replicates == b.replicates
            assert sans_runtime(a.result) == sans_runtime(b.result)


class TestCliWorkers:
    def test_sweep_output_identical_with_workers(self):
        import io

        from repro.cli import main

        argv = ["sweep", "--param", "n", "--values", "8,10",
                "--seeds", "1", "--messages", "1", "--warmup", "4",
                "--drain", "6"]
        serial_out, parallel_out = io.StringIO(), io.StringIO()
        assert main(argv, out=serial_out) == 0
        assert main(argv + ["--workers", "2"], out=parallel_out) == 0
        assert serial_out.getvalue() == parallel_out.getvalue()
