"""Observability wired through the experiment runner, campaigns, sweeps.

What these tests pin down:

* an observed run carries a complete ``result.trace`` payload with the
  §3.5 bounds in its metadata,
* ``observe`` is an execution knob — same content hash, identical
  results and byte-identical traces across repeats,
* campaign records persist the metric series (never the raw spans),
* sweep averaging merges replicate payloads,
* oracle violations are cross-referenced to the span that produced them.
"""

import json

import pytest

from repro.chaos import OracleConfig
from repro.obs import PHASES, ObsConfig
from repro.sim.campaign import Campaign, config_key, result_to_record
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.sweeps import average_results
from repro.workloads.scenarios import ScenarioConfig

pytestmark = pytest.mark.obs


def observed_config(seed=3, **overrides):
    settings = dict(
        scenario=ScenarioConfig(n=8, seed=seed),
        warmup=4.0, message_count=2, message_interval=1.5, drain=6.0,
        oracle=OracleConfig(),
        observe=ObsConfig(),
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


@pytest.fixture(scope="module")
def observed_result():
    return run_experiment(observed_config())


class TestResultPayload:
    def test_trace_payload_shape(self, observed_result):
        trace = observed_result.trace
        assert trace is not None
        assert trace["span_count"] == len(trace["spans"]) > 0
        assert trace["dropped_spans"] == 0
        assert {s["phase"] for s in trace["spans"]} <= set(PHASES)
        assert trace["counters"]["spans.deliver"] > 0

    def test_meta_carries_bounds_and_run_identity(self, observed_result):
        meta = observed_result.trace["meta"]
        assert meta["n"] == 8
        assert meta["seed"] == 3
        assert meta["protocol"] == "byzcast"
        assert meta["warmup"] == 4.0
        assert meta["sample_period"] == ObsConfig().sample_period
        assert meta["latency_bound"] > 0
        assert meta["buffer_bound"] > 0

    def test_metric_series_sampled_on_cadence(self, observed_result):
        series = observed_result.trace["series"]
        times = series["time"]
        assert len(times) > 1
        deltas = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert deltas == {ObsConfig().sample_period}
        for column in ("queue_depth_total", "store_occupancy_total",
                       "request_backlog_total", "fd_suspected_total",
                       "collisions_total", "deliveries_total",
                       "transmissions_total", "buffer_bound",
                       "energy_tx_joules"):
            assert len(series[column]) == len(times), column
        # Store occupancy stays under the §3.5 buffer bound per node.
        bound = observed_result.trace["meta"]["buffer_bound"]
        assert max(series["store_occupancy_max"]) <= bound

    def test_unobserved_run_has_no_trace(self):
        result = run_experiment(observed_config(observe=None))
        assert result.trace is None


class TestNeutrality:
    def test_observe_does_not_change_the_run(self, observed_result):
        plain = run_experiment(observed_config(observe=None))
        assert plain.delivery_ratio == observed_result.delivery_ratio
        assert plain.physical == observed_result.physical
        assert plain.mean_latency == observed_result.mean_latency

    def test_observed_repeats_byte_identical(self, observed_result):
        again = run_experiment(observed_config())
        assert json.dumps(again.trace, sort_keys=True) == \
            json.dumps(observed_result.trace, sort_keys=True)

    def test_config_key_ignores_observe(self):
        assert config_key(observed_config()) == \
            config_key(observed_config(observe=None))
        assert config_key(observed_config()) == config_key(
            observed_config(observe=ObsConfig(sample_period=2.0)))


class TestCampaignRecords:
    def test_record_carries_metrics_but_not_spans(
            self, observed_result, tmp_path):
        record = result_to_record(observed_config(), observed_result)
        metrics = record["metrics"]
        assert metrics["span_count"] == observed_result.trace["span_count"]
        assert metrics["series"]["time"]
        assert metrics["counters"]["spans.deliver"] > 0
        assert metrics["meta"]["latency_bound"] > 0
        assert "spans" not in metrics
        # And it is JSON-serialisable as persisted by a campaign.
        campaign = Campaign(str(tmp_path))
        campaign._write(record["key"], record)
        (loaded,) = campaign.records()
        assert loaded["metrics"]["span_count"] == metrics["span_count"]

    def test_unobserved_record_has_null_metrics(self):
        config = observed_config(observe=None)
        record = result_to_record(config, run_experiment(config))
        assert record["metrics"] is None


class TestSweepAveraging:
    def test_average_results_merges_trace_payloads(self):
        results = [run_experiment(observed_config(seed=seed))
                   for seed in (3, 4)]
        averaged = average_results(results)
        trace = averaged.trace
        assert trace["replicates"] == 2
        assert trace["span_count"] == sum(
            r.trace["span_count"] for r in results)
        shortest = min(len(r.trace["series"]["time"]) for r in results)
        assert len(trace["series"]["time"]) == shortest
        assert "spans" not in trace

    def test_mixed_replicates_average_to_none_trace(self):
        results = [run_experiment(observed_config(observe=None, seed=seed))
                   for seed in (3, 4)]
        assert average_results(results).trace is None


class TestOracleCrossReference:
    def test_violation_points_at_the_producing_span(self):
        # Feed the oracle a duplicate delivery while a span for the
        # offending node is live: the violation record must name that
        # span, so `repro trace path` can jump straight to the evidence.
        from repro.chaos.oracle import InvariantOracle
        from repro.core.config import ProtocolConfig
        from repro.core.messages import MessageId
        from repro.des.kernel import Simulator
        from repro.obs import ObsContext, session

        sim = Simulator()
        oracle = InvariantOracle(sim, [], ProtocolConfig(), delta=0.5)
        msg_id = MessageId(0, 1)
        with session(ObsContext(ObsConfig(), sim=sim)) as ctx:
            oracle.on_broadcast(msg_id, b"payload", 0.0)
            deliver_span = ctx.span("deliver", 2, msg=(0, 1), sender=0)
            oracle.accept_listener(2, 0, b"payload", msg_id)
            oracle.accept_listener(2, 0, b"payload", msg_id)
        (violation,) = oracle.violations
        assert violation.invariant == "duplicate_delivery"
        assert violation.detail["span"] == deliver_span

    def test_violation_without_matching_span_stays_clean(self):
        from repro.chaos.oracle import InvariantOracle
        from repro.core.config import ProtocolConfig
        from repro.core.messages import MessageId
        from repro.des.kernel import Simulator
        from repro.obs import ObsContext, session

        sim = Simulator()
        oracle = InvariantOracle(sim, [], ProtocolConfig(), delta=0.5)
        msg_id = MessageId(0, 1)
        with session(ObsContext(ObsConfig(), sim=sim)):
            oracle.on_broadcast(msg_id, b"payload", 0.0)
            oracle.accept_listener(2, 0, b"payload", msg_id)
            oracle.accept_listener(2, 0, b"payload", msg_id)
        (violation,) = oracle.violations
        assert "span" not in violation.detail
