"""Exporter tests: JSONL roundtrip, CSV series, Chrome trace_event.

The exporters are the determinism boundary — byte-identity claims in the
determinism matrix compare their output — so these tests pin the formats
down: stable key order, seq-recoverable ordering, and a Chrome document
that passes the self-contained validator (plus negative cases proving the
validator actually rejects malformed documents).
"""

import json

import pytest

from repro.des.kernel import Simulator
from repro.obs import (
    ObsConfig,
    ObsContext,
    chrome_trace,
    load_trace,
    series_to_csv,
    validate_chrome,
    write_chrome,
    write_trace,
)

pytestmark = pytest.mark.obs


def sample_context():
    """A small hand-driven context with a tx (duration) span, ties, and a
    message-less span."""
    sim = Simulator()
    ctx = ObsContext(ObsConfig(), sim=sim)
    ctx.meta.update({"n": 3, "seed": 7})
    ctx.span("origin", 0, msg=(0, 1))
    ctx.span("sign", 0, msg=(0, 1))          # same instant: seq breaks tie
    sim.schedule(0.5, lambda: ctx.span("tx", 0, msg=(0, 1), duration=0.004))
    sim.schedule(0.504, lambda: ctx.span("rx", 1, msg=(0, 1), sender=0))
    sim.schedule(0.51, lambda: ctx.span("deliver", 1, msg=(0, 1), sender=0))
    sim.schedule(1.0, lambda: ctx.span("backoff", 2, duration=0.002))
    sim.run()
    ctx.registry.record_sample(0.0, {"queue_depth_total": 1.0})
    ctx.registry.record_sample(0.5, {"queue_depth_total": 0.0,
                                     "deliveries_total": 1.0})
    return ctx


class TestJsonl:
    def test_roundtrip_preserves_spans_and_meta(self, tmp_path):
        ctx = sample_context()
        path = str(tmp_path / "trace.jsonl")
        written = write_trace(ctx.export_payload(), path)
        assert written == len(ctx.spans)
        meta, spans = load_trace(path)
        assert meta["meta"] == {"n": 3, "seed": 7}
        assert meta["span_count"] == len(ctx.spans)
        assert meta["counters"]["spans.origin"] == 1
        assert spans == ctx.span_dicts()

    def test_load_reorders_by_seq(self, tmp_path):
        ctx = sample_context()
        path = str(tmp_path / "trace.jsonl")
        payload = ctx.export_payload()
        payload["spans"] = list(reversed(payload["spans"]))
        write_trace(payload, path)
        _, spans = load_trace(path)
        assert [s["seq"] for s in spans] == sorted(s["seq"] for s in spans)
        assert spans == ctx.span_dicts()

    def test_same_context_writes_identical_bytes(self, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = str(tmp_path / name)
            write_trace(sample_context().export_payload(), path)
            paths.append(path)
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()

    def test_spans_suppressed_by_config(self, tmp_path):
        sim = Simulator()
        ctx = ObsContext(ObsConfig(spans_in_result=False), sim=sim)
        ctx.span("origin", 0, msg=(0, 1))
        payload = ctx.export_payload()
        assert "spans" not in payload
        assert payload["span_count"] == 1
        path = str(tmp_path / "trace.jsonl")
        assert write_trace(payload, path) == 0
        meta, spans = load_trace(path)
        assert meta["span_count"] == 1 and spans == []


class TestCsv:
    def test_series_csv_layout(self, tmp_path):
        ctx = sample_context()
        path = str(tmp_path / "series.csv")
        rows = series_to_csv(ctx.registry.series_dict(), path)
        assert rows == 2
        lines = (tmp_path / "series.csv").read_text().splitlines()
        assert lines[0] == "time,deliveries_total,queue_depth_total"
        assert lines[1] == "0.0,0.0,1.0"
        assert lines[2] == "0.5,1.0,0.0"

    def test_empty_series(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        assert series_to_csv({}, path) == 0
        assert (tmp_path / "empty.csv").read_text() == "time\n"


class TestChrome:
    def test_document_is_valid_and_complete(self):
        ctx = sample_context()
        doc = chrome_trace(ctx.span_dicts(), ctx.export_payload())
        assert validate_chrome(doc) == []
        events = doc["traceEvents"]
        # Process + one thread-name/sort pair per node.
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in metadata} == {
            "process_name", "thread_name", "thread_sort_index"}
        assert any(e["args"]["name"] == "repro n=3 seed=7"
                   for e in metadata if e["name"] == "process_name")
        # tx/backoff spans become duration events, µs scale.
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"].split()[0] for e in complete} == {"tx", "backoff"}
        tx = next(e for e in complete if e["name"].startswith("tx"))
        assert tx["ts"] == pytest.approx(0.5e6)
        assert tx["dur"] == pytest.approx(4000.0)
        # Everything else is an instant with thread scope.
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)
        deliver = next(e for e in instants if e["name"].startswith("deliver"))
        assert deliver["tid"] == 1
        assert deliver["args"]["sender"] == 0
        assert deliver["args"]["msg"] == "0:1"

    def test_write_chrome_roundtrips_through_validator(self, tmp_path):
        ctx = sample_context()
        path = str(tmp_path / "chrome.json")
        count = write_chrome(ctx.span_dicts(), path, ctx.export_payload())
        with open(path) as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == count
        assert validate_chrome(path) == []

    def test_validator_rejects_malformed_documents(self, tmp_path):
        assert validate_chrome([]) == ["top level must be a JSON object"]
        assert validate_chrome({}) == ["missing traceEvents array"]
        bad_events = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 1},
            {"ph": "i", "pid": 0, "tid": 0, "ts": 1, "s": "q"},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1},
            {"ph": "i", "name": "x", "pid": "zero", "tid": 0, "ts": 1},
            {"ph": "i", "name": "x", "pid": 0, "tid": 0},
        ]}
        problems = validate_chrome(bad_events)
        assert any("invalid ph" in p for p in problems)
        assert any("invalid instant scope" in p for p in problems)
        assert any("needs dur" in p for p in problems)
        assert any("integer pid" in p for p in problems)
        assert any("numeric ts" in p for p in problems)
        missing = tmp_path / "nope.json"
        assert validate_chrome(str(missing))[0].startswith("unreadable")
