"""Tests for the run-time invariant oracle (repro.chaos.oracle)."""

from types import SimpleNamespace

import pytest

from repro.chaos import (
    FaultEvent,
    InvariantOracle,
    OracleConfig,
    mute_onset,
)
from repro.core.config import ProtocolConfig
from repro.core.messages import MessageId
from repro.core.node import NetworkNode
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.radio.geometry import Position
from repro.radio.medium import Medium
from repro.sim import ExperimentConfig, run_experiment
from repro.sim.campaign import Campaign, result_to_record
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from tests.helpers import line_coords


def bare_oracle(n_fake_nodes=0, **config_kwargs):
    """An oracle over a bare simulator (no network) for unit checks."""
    sim = Simulator()
    nodes = [SimpleNamespace(node_id=i) for i in range(n_fake_nodes)]
    oracle = InvariantOracle(sim, nodes, ProtocolConfig(), delta=1.0,
                             config=OracleConfig(**config_kwargs))
    return sim, oracle


class TestUnitChecks:
    def test_forged_payload_detected(self):
        sim, oracle = bare_oracle()
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"genuine", 0.0)
        oracle.accept_listener(3, 0, b"tampered", msg_id)
        assert oracle.summary() == {"forged_payload": 1}

    def test_matching_payload_clean(self):
        sim, oracle = bare_oracle()
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"genuine", 0.0)
        oracle.accept_listener(3, 0, b"genuine", msg_id)
        assert oracle.violation_count == 0

    def test_duplicate_delivery_detected(self):
        sim, oracle = bare_oracle()
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        oracle.accept_listener(3, 0, b"x", msg_id)
        oracle.accept_listener(3, 0, b"x", msg_id)
        assert oracle.summary() == {"duplicate_delivery": 1}

    def test_state_reset_legitimises_redelivery(self):
        sim, oracle = bare_oracle()
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        oracle.accept_listener(3, 0, b"x", msg_id)
        oracle.note_state_reset(3)
        oracle.accept_listener(3, 0, b"x", msg_id)
        assert oracle.violation_count == 0

    def test_restart_fault_clears_via_chaos_listener(self):
        sim, oracle = bare_oracle()
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        oracle.accept_listener(3, 0, b"x", msg_id)
        oracle.chaos_listener(5.0, FaultEvent(time=5.0, node=3,
                                              action="restart"))
        oracle.accept_listener(3, 0, b"x", msg_id)
        assert oracle.violation_count == 0
        assert 3 in oracle.exempt

    def test_late_delivery_violates_latency_bound(self):
        sim, oracle = bare_oracle()
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        sim.schedule_at(oracle.latency_bound + 50.0, lambda: None)
        sim.run()
        oracle.accept_listener(3, 0, b"x", msg_id)
        assert oracle.summary() == {"latency_bound": 1}
        detail = oracle.violations[0].detail
        assert detail["latency"] > detail["bound"]

    def test_latency_check_skips_exempt_nodes(self):
        sim, oracle = bare_oracle()
        oracle.chaos_listener(0.0, FaultEvent(time=0.0, node=3,
                                              action="mute"))
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        sim.schedule_at(oracle.latency_bound + 50.0, lambda: None)
        sim.run()
        oracle.accept_listener(3, 0, b"x", msg_id)
        assert oracle.violation_count == 0

    def test_listener_notified_per_violation(self):
        sim, oracle = bare_oracle()
        seen = []
        oracle.add_listener(lambda v: seen.append(v.invariant))
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        oracle.accept_listener(3, 0, b"bad", msg_id)
        assert seen == ["forged_payload"]

    def test_record_limit_caps_storage_not_count(self):
        sim, oracle = bare_oracle(record_limit=2)
        msg_id = MessageId(0, 1)
        oracle.on_broadcast(msg_id, b"x", 0.0)
        for receiver in range(3, 8):
            oracle.accept_listener(receiver, 0, b"bad", msg_id)
        assert oracle.violation_count == 5
        assert len(oracle.violations) == 2


class TestBufferSampling:
    def fake_node(self, node_id, occupancy, crashed=False):
        store = SimpleNamespace(buffered_count=occupancy)
        return SimpleNamespace(node_id=node_id,
                               protocol=SimpleNamespace(store=store),
                               crashed=crashed)

    def test_overflow_flagged_once(self):
        sim = Simulator()
        node = self.fake_node(0, occupancy=999)
        oracle = InvariantOracle(
            sim, [node], ProtocolConfig(), delta=0.0,
            config=OracleConfig(buffer_sample_period=1.0, buffer_slack=2))
        assert oracle.buffer_bound == 2
        oracle.start()
        sim.run(until=5.0)       # five samples, one flag
        oracle.stop()
        assert oracle.summary() == {"buffer_bound": 1}
        assert oracle.violations[0].detail["occupancy"] == 999

    def test_within_bound_and_crashed_nodes_clean(self):
        sim = Simulator()
        nodes = [self.fake_node(0, occupancy=1),
                 self.fake_node(1, occupancy=999, crashed=True)]
        oracle = InvariantOracle(
            sim, nodes, ProtocolConfig(), delta=0.0,
            config=OracleConfig(buffer_sample_period=1.0, buffer_slack=2))
        oracle.start()
        sim.run(until=3.0)
        oracle.stop()
        assert oracle.violation_count == 0


class BrokenDeliveryNode(NetworkNode):
    """Test-only sabotage: delivers every accept twice, corrupted.

    Exists to prove the oracle *fires* — the real stack's signature
    verification and duplicate filtering make these violations otherwise
    unreachable.
    """

    def _on_accept(self, originator, payload, msg_id):
        super()._on_accept(originator, b"corrupt:" + payload, msg_id)
        super()._on_accept(originator, b"corrupt:" + payload, msg_id)


class TestOracleFires:
    def test_broken_delivery_node_is_caught(self):
        sim = Simulator()
        streams = StreamFactory(9)
        medium = Medium(sim, streams.stream("medium"))
        directory = KeyDirectory(HmacScheme(seed=b"broken"))
        nodes = []
        for node_id, (x, y) in enumerate(line_coords(3, 70.0)):
            cls = BrokenDeliveryNode if node_id == 2 else NetworkNode
            nodes.append(cls(sim, medium, node_id, Position(x, y), 100.0,
                             streams, directory, None))
        oracle = InvariantOracle(sim, nodes, ProtocolConfig(), delta=1.0)
        oracle.attach_network(nodes)
        for node in nodes:
            node.start()
        sim.run(until=6.0)
        payload = b"the-truth"
        msg_id = nodes[0].broadcast(payload)
        oracle.on_broadcast(msg_id, payload, sim.now)
        sim.run(until=12.0)
        summary = oracle.summary()
        assert summary.get("forged_payload", 0) >= 1
        assert summary.get("duplicate_delivery", 0) >= 1
        clean = [v for v in oracle.violations if v.node != 2]
        assert clean == []       # only the sabotaged node is implicated


class TestExperimentRegression:
    def test_forging_adversaries_cause_zero_violations(self):
        """Seeded forging-adversary run: corrupted relays never reach the
        application layer, so the oracle stays silent (safety regression
        demanded by the chaos issue)."""
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=12, seed=7,
                                    adversaries=AdversaryMix.forging(2)),
            oracle=OracleConfig(),
            warmup=6.0, message_count=3, message_interval=1.5, drain=10.0)
        result = run_experiment(config)
        assert result.byzantine == 2
        assert result.invariant_violations == 0
        assert result.violations == []

    def test_midrun_mute_schedule_zero_violations(self):
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=12, seed=5),
            chaos=mute_onset([10, 11], onset=1.0, recovery=6.0),
            oracle=OracleConfig(),
            warmup=6.0, message_count=3, message_interval=1.5, drain=12.0)
        result = run_experiment(config)
        assert result.chaos_events == 4
        assert result.invariant_violations == 0

    def test_campaign_record_carries_violation_columns(self, tmp_path):
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=10, seed=2),
            chaos=mute_onset([9], onset=1.0),
            oracle=OracleConfig(),
            warmup=5.0, message_count=2, message_interval=1.0, drain=8.0)
        campaign = Campaign(str(tmp_path / "runs"))
        executed, skipped = campaign.run([config])
        assert (executed, skipped) == (1, 0)
        record = campaign.records()[0]
        assert record["invariant_violations"] == 0
        assert record["violations"] == []
        assert record["chaos_events"] == 1
        rows = campaign.rows("protocol", "invariant_violations")
        assert rows == [{"protocol": "byzcast", "invariant_violations": 0}]
