"""Tests for campaigns, ASCII plots, and FD scorecards."""

import pytest

from repro.adversary.behaviors import MuteBehavior
from repro.metrics.fd_metrics import FdScorecard
from repro.sim.campaign import Campaign, config_key, result_to_record
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.plots import bar_chart, series_chart, spark_line
from repro.workloads.scenarios import ScenarioConfig

from tests.helpers import build_network

FAST = dict(message_count=2, message_interval=1.0, warmup=5.0, drain=8.0)


class TestCampaign:
    def configs(self):
        return [ExperimentConfig(scenario=ScenarioConfig(n=10, seed=s),
                                 **FAST)
                for s in (1, 2)]

    def test_run_persists_records(self, tmp_path):
        campaign = Campaign(str(tmp_path / "camp"))
        executed, skipped = campaign.run(self.configs())
        assert (executed, skipped) == (2, 0)
        records = campaign.records()
        assert len(records) == 2
        assert all(0 <= r["delivery_ratio"] <= 1 for r in records)

    def test_resume_skips_done_work(self, tmp_path):
        campaign = Campaign(str(tmp_path / "camp"))
        campaign.run(self.configs())
        executed, skipped = campaign.run(self.configs())
        assert (executed, skipped) == (0, 2)

    def test_force_reruns(self, tmp_path):
        campaign = Campaign(str(tmp_path / "camp"))
        configs = self.configs()[:1]
        campaign.run(configs)
        executed, _ = campaign.run(configs, force=True)
        assert executed == 1

    def test_config_key_stable_and_distinct(self):
        a1 = ExperimentConfig(scenario=ScenarioConfig(n=10, seed=1), **FAST)
        a2 = ExperimentConfig(scenario=ScenarioConfig(n=10, seed=1), **FAST)
        b = ExperimentConfig(scenario=ScenarioConfig(n=10, seed=2), **FAST)
        assert config_key(a1) == config_key(a2)
        assert config_key(a1) != config_key(b)

    def test_load_roundtrip(self, tmp_path):
        campaign = Campaign(str(tmp_path / "camp"))
        config = self.configs()[0]
        campaign.run([config])
        record = campaign.load(config)
        assert record is not None
        assert record["key"] == config_key(config)
        assert campaign.has(config)

    def test_rows_projection(self, tmp_path):
        campaign = Campaign(str(tmp_path / "camp"))
        campaign.run(self.configs())
        rows = campaign.rows("protocol", "seed")
        assert {row["seed"] for row in rows} == {1, 2}
        assert all(set(row) == {"protocol", "seed"} for row in rows)

    def test_record_shape(self):
        config = self.configs()[0]
        result = run_experiment(config)
        record = result_to_record(config, result)
        assert record["protocol"] == "byzcast"
        assert isinstance(record["physical"], dict)
        assert isinstance(record["config"], dict)


class TestPlots:
    def test_bar_chart_scaling(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10     # max value gets full width
        assert lines[0].count("█") == 5

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        assert bar_chart([], []) == "(no data)"

    def test_spark_line_levels(self):
        spark = spark_line([0, 1, 2, 3])
        assert len(spark) == 4
        assert spark[0] == "▁"
        assert spark[-1] == "█"

    def test_spark_line_flat(self):
        assert spark_line([5, 5, 5]) == "▁▁▁"
        assert spark_line([]) == ""

    def test_series_chart(self):
        chart = series_chart([10, 20, 30],
                             {"byzcast": [1.0, 1.0, 1.0],
                              "overlay": [0.9, 0.8, None]})
        assert "byzcast" in chart and "overlay" in chart
        assert "10, 20, 30" in chart

    def test_series_chart_validation(self):
        with pytest.raises(ValueError):
            series_chart([1, 2], {"s": [1.0]})
        assert series_chart([1], {}) == "(no series)"


class TestFdScorecard:
    def run_attack(self):
        positions = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        sim, medium, nodes, _ = build_network(
            positions, 100.0, behaviors={2: MuteBehavior()})
        scorecard = FdScorecard(byzantine={2}, correct={0, 1, 3})
        scorecard.attach_network(nodes, sim)
        sim.run(until=8.0)
        start = sim.now
        for i in range(8):
            nodes[0].broadcast(f"p{i}".encode())
            sim.run(until=sim.now + 3.0)
        return scorecard, start

    def test_recall_and_precision(self):
        scorecard, _ = self.run_attack()
        assert scorecard.recall() == 1.0
        assert scorecard.precision() == 1.0
        assert scorecard.wrongly_suspected_nodes() == set()

    def test_detection_latency(self):
        scorecard, start = self.run_attack()
        latency = scorecard.detection_latency(2, since=start)
        assert latency is not None
        assert 0 < latency < 30.0
        assert scorecard.detection_latency(99) is None

    def test_summary(self):
        scorecard, _ = self.run_attack()
        summary = scorecard.summary()
        assert summary["recall"] == 1.0
        assert summary["events"] >= 1

    def test_byzantine_observers_not_scored(self):
        scorecard = FdScorecard(byzantine={2}, correct={0})
        scorecard.record(1.0, observer=2, target=0, detector="mute")
        assert scorecard.events == []

    def test_empty_scorecard_defaults(self):
        scorecard = FdScorecard(byzantine=set(), correct={0})
        assert scorecard.precision() is None
        assert scorecard.recall() == 1.0
