"""Unit tests for timers and periodic tasks."""

import pytest

from repro.des.kernel import Simulator
from repro.des.random import RandomStream
from repro.des.timers import PeriodicTask, Timer


class TestTimer:
    def test_fires_after_timeout(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.start(2.0))
        sim.run()
        assert fired == [3.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append, )
        timer.start(2.0, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_idempotent(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.cancel()
        timer.cancel()

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_args_forwarded(self):
        sim = Simulator()
        captured = []
        timer = Timer(sim, lambda a, b: captured.append((a, b)))
        timer.start(1.0, "a", 2)
        sim.run()
        assert captured == [("a", 2)]

    def test_restart_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_immediately(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now),
                            start_immediately=True)
        task.start()
        sim.run(until=2.5)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_halts(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_start_is_idempotent(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        task.start()
        sim.run(until=1.5)
        assert ticks == [1.0]

    def test_jitter_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=0.2)

    def test_jitter_bounds(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now),
                            jitter=0.25, rng=RandomStream(42))
        task.start()
        sim.run(until=50.0)
        gaps = [b - a for a, b in zip([0.0] + ticks, ticks)]
        assert all(0.75 <= g <= 1.25 for g in gaps)
        assert len(ticks) > 30

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_invalid_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=1.5,
                         rng=RandomStream(1))

    def test_set_period(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        sim.schedule(1.5, lambda: task.set_period(2.0))
        sim.run(until=6.0)
        assert ticks == [1.0, 2.0, 4.0, 6.0]

    def test_stop_inside_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            task.stop()

        task = PeriodicTask(sim, 1.0, tick)
        task.start()
        sim.run(until=5.0)
        assert ticks == [1.0]

    def test_running_property(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None)
        assert not task.running
        task.start()
        assert task.running
        task.stop()
        assert not task.running
