"""Unit tests for the protocol engine against the pseudo-code (Figs 3-4).

A single real protocol instance runs over a fake transport; peers exist as
signing identities whose traffic the tests fabricate.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.messages import (
    DATA,
    FIND_MISSING_MSG,
    GOSSIP,
    REQUEST_MSG,
    DataMessage,
    FindMissingMessage,
    GossipMessage,
    GossipPacket,
    MessageId,
    RequestMessage,
)
from repro.fd.trust import TrustLevel

from tests.helpers import ProtocolHarness


def data_from(harness, peer, seq=1, payload=b"payload", ttl=1):
    return DataMessage.create(harness.signers[peer], seq, payload, ttl=ttl)


def gossip_from(harness, peer, seq=1):
    return GossipMessage.create(harness.signers[peer], seq)


def gossip_packet(*entries):
    return GossipPacket(entries=tuple(entries))


class TestBroadcast:
    def test_broadcast_sends_signed_data(self):
        h = ProtocolHarness()
        msg_id = h.protocol.broadcast(b"hello")
        assert msg_id == MessageId(1, 1)
        sent = h.transport.of_kind(DATA)
        assert len(sent) == 1
        assert sent[0].verify(h.directory)
        assert sent[0].payload == b"hello"

    def test_broadcast_piggybacks_gossip_by_default(self):
        h = ProtocolHarness()
        h.protocol.broadcast(b"hello")
        sent = h.transport.of_kind(DATA)[0]
        assert sent.gossip is not None
        assert sent.gossip.verify(h.directory)

    def test_broadcast_without_piggyback_sends_gossip_packet(self):
        h = ProtocolHarness(config=ProtocolConfig(piggyback_gossip=False))
        h.protocol.broadcast(b"hello")
        assert h.transport.of_kind(DATA)[0].gossip is None
        packets = h.transport.of_kind(GOSSIP)
        assert len(packets) == 1
        assert packets[0].entries[0].msg_id == MessageId(1, 1)

    def test_sequence_numbers_increment(self):
        h = ProtocolHarness()
        assert h.protocol.broadcast(b"a").seq == 1
        assert h.protocol.broadcast(b"b").seq == 2

    def test_own_message_not_delivered_to_self(self):
        h = ProtocolHarness()
        h.protocol.broadcast(b"hello")
        assert h.accepted == []

    def test_originator_gossips_periodically(self):
        h = ProtocolHarness()
        h.protocol.start()
        h.protocol.broadcast(b"hello")
        h.run(2.0)
        assert len(h.transport.of_kind(GOSSIP)) >= 1


class TestDataReception:
    def test_valid_message_accepted(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        assert h.accepted == [(2, b"payload")]

    def test_duplicate_ignored(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.deliver(message, sender=3)
        assert len(h.accepted) == 1
        assert h.protocol.stats.duplicates_ignored == 1

    def test_bad_signature_suspected(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2)
        forged = DataMessage(msg_id=message.msg_id, payload=b"EVIL",
                             signature=message.signature)
        h.deliver(forged, sender=4)
        assert h.accepted == []
        assert h.trust.level(4) is TrustLevel.UNTRUSTED
        assert h.protocol.stats.bad_signatures == 1

    def test_non_overlay_node_does_not_forward(self):
        h = ProtocolHarness(node_in_overlay=False)
        h.deliver(data_from(h, peer=2), sender=2)
        assert h.transport.of_kind(DATA) == []

    def test_overlay_node_forwards_with_ttl1(self):
        h = ProtocolHarness(node_in_overlay=True)
        h.deliver(data_from(h, peer=2), sender=2)
        forwarded = h.transport.of_kind(DATA)
        assert len(forwarded) == 1
        assert forwarded[0].ttl == 1

    def test_non_overlay_relays_ttl2_once(self):
        h = ProtocolHarness(node_in_overlay=False)
        h.deliver(data_from(h, peer=2, ttl=2), sender=4)
        relayed = h.transport.of_kind(DATA)
        assert len(relayed) == 1
        assert relayed[0].ttl == 1

    def test_mute_expectation_on_non_overlay_delivery(self):
        # Line 10: got m from a non-overlay, non-originator node → expect
        # the overlay to also deliver it.
        h = ProtocolHarness()
        h.deliver(data_from(h, peer=5), sender=4)  # 4 is not 5, not overlay
        assert h.mute.stats.expectations == 1
        h.run(5.0)  # nobody forwards → overlay neighbors struck
        assert h.mute.suspicion_count(2) + h.mute.suspicion_count(3) >= 1

    def test_no_expectation_when_sender_is_originator(self):
        h = ProtocolHarness()
        h.deliver(data_from(h, peer=4), sender=4)
        assert h.mute.stats.expectations == 0

    def test_no_expectation_when_sender_in_overlay(self):
        h = ProtocolHarness()
        h.deliver(data_from(h, peer=5), sender=2)  # 2 is overlay member
        assert h.mute.stats.expectations == 0

    def test_overlay_forward_fulfills_expectation(self):
        h = ProtocolHarness()
        message = data_from(h, peer=5)
        h.deliver(message, sender=4)      # expectation armed on {2, 3}
        h.deliver(message, sender=2)      # overlay neighbor does forward
        h.run(5.0)
        assert h.mute.suspicion_count(2) == 0
        assert h.mute.suspicion_count(3) == 0

    def test_piggybacked_gossip_absorbed(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2).with_gossip(gossip_from(h, 2))
        h.deliver(message, sender=2)
        assert h.protocol.store.has_gossip(message.msg_id)
        assert h.protocol.store.is_gossiping(message.msg_id)

    def test_mismatched_piggyback_suspected(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2, seq=1).with_gossip(
            gossip_from(h, 2, seq=9))
        h.deliver(message, sender=2)
        assert h.trust.level(2) is TrustLevel.UNTRUSTED


class TestGossipAndRecovery:
    def test_gossip_about_held_message_starts_gossiping(self):
        h = ProtocolHarness()
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.deliver(gossip_packet(gossip_from(h, 2)), sender=3, kind=GOSSIP)
        assert h.protocol.store.is_gossiping(message.msg_id)

    def test_gossip_about_missing_message_triggers_request(self):
        h = ProtocolHarness()
        h.deliver(gossip_packet(gossip_from(h, 2)), sender=3, kind=GOSSIP)
        assert h.transport.of_kind(REQUEST_MSG) == []  # delayed
        h.run(1.0)
        requests = h.transport.of_kind(REQUEST_MSG)
        assert len(requests) == 1
        assert requests[0].target == 3
        assert requests[0].requester == 1
        assert requests[0].verify(h.directory)

    def test_request_sent_even_when_gossiper_is_originator(self):
        # The paper's Theorem 3.2 proof requires that any holder serve on
        # request; the default config therefore requests from originators
        # too (see ProtocolConfig.request_from_originator).
        h = ProtocolHarness()
        h.deliver(gossip_packet(gossip_from(h, 2)), sender=2, kind=GOSSIP)
        h.run(1.0)
        assert len(h.transport.of_kind(REQUEST_MSG)) == 1
        assert h.mute.stats.expectations == 1

    def test_literal_line29_skips_originator_request(self):
        h = ProtocolHarness(config=ProtocolConfig(
            request_from_originator=False))
        h.deliver(gossip_packet(gossip_from(h, 2)), sender=2, kind=GOSSIP)
        h.run(1.0)
        assert h.transport.of_kind(REQUEST_MSG) == []
        assert h.mute.stats.expectations == 1

    def test_request_cancelled_if_message_arrives_meanwhile(self):
        h = ProtocolHarness()
        h.deliver(gossip_packet(gossip_from(h, 2)), sender=3, kind=GOSSIP)
        h.deliver(data_from(h, peer=2), sender=2)  # arrives before timer
        h.run(1.0)
        assert h.transport.of_kind(REQUEST_MSG) == []

    def test_requests_paced_per_message(self):
        h = ProtocolHarness()
        entry = gossip_from(h, 2)
        h.deliver(gossip_packet(entry), sender=3, kind=GOSSIP)
        h.deliver(gossip_packet(entry), sender=4, kind=GOSSIP)
        h.run(1.0)
        assert len(h.transport.of_kind(REQUEST_MSG)) == 1

    def test_bad_gossip_signature_suspected(self):
        h = ProtocolHarness()
        bogus = GossipMessage(msg_id=MessageId(2, 1), signature=b"junk")
        h.deliver(gossip_packet(bogus), sender=3, kind=GOSSIP)
        assert h.trust.level(3) is TrustLevel.UNTRUSTED

    def test_mute_expectation_on_gossiper(self):
        h = ProtocolHarness()
        h.deliver(gossip_packet(gossip_from(h, 2)), sender=3, kind=GOSSIP)
        assert h.mute.stats.expectations == 1
        h.run(5.0)  # gossiper never supplies the message
        assert h.mute.suspicion_count(3) >= 1


class TestRequestHandling:
    def make_holder(self, node_in_overlay):
        h = ProtocolHarness(node_in_overlay=node_in_overlay)
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.transport.clear()
        return h, message

    def test_target_serves_request(self):
        h, message = self.make_holder(node_in_overlay=False)
        request = RequestMessage.create(
            h.signers[4], gossip_from(h, 2), target=1)
        h.deliver(request, sender=4, kind=REQUEST_MSG)
        h.run(1.0)
        served = h.transport.of_kind(DATA)
        assert len(served) == 1
        assert served[0].msg_id == message.msg_id
        assert h.protocol.stats.requests_served == 1

    def test_overlay_node_serves_request_not_addressed_to_it(self):
        h, message = self.make_holder(node_in_overlay=True)
        request = RequestMessage.create(
            h.signers[4], gossip_from(h, 2), target=5)
        h.deliver(request, sender=4, kind=REQUEST_MSG)
        h.run(1.0)
        assert len(h.transport.of_kind(DATA)) == 1

    def test_bystander_ignores_request(self):
        h, message = self.make_holder(node_in_overlay=False)
        request = RequestMessage.create(
            h.signers[4], gossip_from(h, 2), target=5)
        h.deliver(request, sender=4, kind=REQUEST_MSG)
        h.run(1.0)
        assert h.transport.of_kind(DATA) == []

    def test_first_requests_not_indicted(self):
        # A few retries are the normal collision-recovery pattern.
        h, _ = self.make_holder(node_in_overlay=True)
        entry = gossip_from(h, 2)
        for _ in range(h.config.request_indict_threshold):
            h.deliver(RequestMessage.create(h.signers[4], entry, target=1),
                      sender=4, kind=REQUEST_MSG)
        assert h.verbose.suspicion_count(4) == 0

    def test_repeated_requests_indicted(self):
        h, _ = self.make_holder(node_in_overlay=True)
        entry = gossip_from(h, 2)
        for _ in range(h.config.request_indict_threshold + 2):
            h.deliver(RequestMessage.create(h.signers[4], entry, target=1),
                      sender=4, kind=REQUEST_MSG)
        assert h.verbose.suspicion_count(4) == 2

    def test_flooding_requester_eventually_ignored(self):
        h, _ = self.make_holder(node_in_overlay=True)
        entry = gossip_from(h, 2)
        flood = (h.config.request_indict_threshold
                 + h.verbose.config.suspicion_threshold + 3)
        for _ in range(flood):
            h.deliver(RequestMessage.create(h.signers[4], entry, target=1),
                      sender=4, kind=REQUEST_MSG)
        assert h.verbose.suspected(4)
        # Counting stops growing once the node stops reacting.
        assert h.verbose.suspicion_count(4) == \
            h.verbose.config.suspicion_threshold

    def test_overlay_node_without_message_initiates_find(self):
        h = ProtocolHarness(node_in_overlay=True)
        request = RequestMessage.create(
            h.signers[4], gossip_from(h, 2), target=5)
        h.deliver(request, sender=4, kind=REQUEST_MSG)
        finds = h.transport.of_kind(FIND_MISSING_MSG)
        assert len(finds) == 1
        assert finds[0].ttl == 2
        assert finds[0].claimed_holder == 5
        assert finds[0].verify(h.directory)

    def test_non_overlay_without_message_does_not_find(self):
        h = ProtocolHarness(node_in_overlay=False)
        request = RequestMessage.create(
            h.signers[4], gossip_from(h, 2), target=1)
        h.deliver(request, sender=4, kind=REQUEST_MSG)
        assert h.transport.of_kind(FIND_MISSING_MSG) == []

    def test_originator_requesting_own_message_indicted(self):
        h = ProtocolHarness(node_in_overlay=True)
        request = RequestMessage.create(
            h.signers[2], gossip_from(h, 2), target=1)
        h.deliver(request, sender=2, kind=REQUEST_MSG)
        assert h.verbose.suspicion_count(2) == 1
        assert h.transport.of_kind(FIND_MISSING_MSG) == []

    def test_relayed_request_rejected(self):
        # requester field ≠ link sender → protocol violation.
        h, _ = self.make_holder(node_in_overlay=True)
        request = RequestMessage.create(
            h.signers[4], gossip_from(h, 2), target=1)
        h.deliver(request, sender=5, kind=REQUEST_MSG)
        h.run(1.0)
        assert h.transport.of_kind(DATA) == []
        assert h.trust.level(5) is TrustLevel.UNTRUSTED


class TestFindHandling:
    def test_missing_message_forwarded_once(self):
        h = ProtocolHarness()
        find = FindMissingMessage.create(
            h.signers[2], gossip_from(h, 3), claimed_holder=4, ttl=2)
        h.deliver(find, sender=2, kind=FIND_MISSING_MSG)
        h.deliver(find, sender=5, kind=FIND_MISSING_MSG)  # second copy
        forwarded = h.transport.of_kind(FIND_MISSING_MSG)
        assert len(forwarded) == 1
        assert forwarded[0].ttl == 1

    def test_ttl1_find_not_forwarded(self):
        h = ProtocolHarness()
        find = FindMissingMessage.create(
            h.signers[2], gossip_from(h, 3), claimed_holder=4, ttl=1)
        h.deliver(find, sender=2, kind=FIND_MISSING_MSG)
        assert h.transport.of_kind(FIND_MISSING_MSG) == []

    def test_claimed_holder_serves_neighbor_with_ttl1(self):
        h = ProtocolHarness(node_in_overlay=False)
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.transport.clear()
        find = FindMissingMessage.create(
            h.signers[3], gossip_from(h, 2), claimed_holder=1, ttl=2)
        h.deliver(find, sender=3, kind=FIND_MISSING_MSG)  # 3 is neighbor
        h.run(1.0)
        served = h.transport.of_kind(DATA)
        assert len(served) == 1
        assert served[0].ttl == 1

    def test_serves_distant_initiator_with_ttl2(self):
        h = ProtocolHarness(node_in_overlay=True, neighbors=[2, 3])
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.transport.clear()
        find = FindMissingMessage.create(
            h.signers[5], gossip_from(h, 2), claimed_holder=4, ttl=1)
        h.deliver(find, sender=5, kind=FIND_MISSING_MSG)  # 5 not a neighbor
        h.run(1.0)
        served = h.transport.of_kind(DATA)
        assert len(served) == 1
        assert served[0].ttl == 2

    def test_overlay_node_indicts_neighbor_after_repeated_finds(self):
        h = ProtocolHarness(node_in_overlay=True)
        h.deliver(data_from(h, peer=2), sender=2)
        h.transport.clear()
        find = FindMissingMessage.create(
            h.signers[3], gossip_from(h, 2), claimed_holder=1, ttl=2)
        threshold = h.config.request_indict_threshold
        for _ in range(threshold):
            h.deliver(find, sender=3, kind=FIND_MISSING_MSG)
        assert h.verbose.suspicion_count(3) == 0  # retries tolerated
        h.deliver(find, sender=3, kind=FIND_MISSING_MSG)
        assert h.verbose.suspicion_count(3) == 1

    def test_bystander_does_not_serve(self):
        h = ProtocolHarness(node_in_overlay=False)
        h.deliver(data_from(h, peer=2), sender=2)
        h.transport.clear()
        find = FindMissingMessage.create(
            h.signers[3], gossip_from(h, 2), claimed_holder=4, ttl=2)
        h.deliver(find, sender=3, kind=FIND_MISSING_MSG)
        h.run(1.0)
        assert h.transport.of_kind(DATA) == []


class TestPurging:
    def test_messages_purged_after_timeout(self):
        h = ProtocolHarness(config=ProtocolConfig(purge_timeout=5.0,
                                                  purge_period=1.0))
        h.protocol.start()
        message = data_from(h, peer=2)
        h.deliver(message, sender=2)
        h.run(10.0)
        assert h.protocol.store.message(message.msg_id) is None
        assert h.protocol.stats.messages_purged == 1
        # Validity: even after purge, the duplicate is still ignored.
        h.deliver(message, sender=3)
        assert len(h.accepted) == 1


class TestGossipAggregation:
    def test_entries_batched_into_one_packet(self):
        h = ProtocolHarness()
        h.protocol.start()
        for seq in (1, 2, 3):
            message = data_from(h, peer=2, seq=seq).with_gossip(
                gossip_from(h, 2, seq=seq))
            h.deliver(message, sender=2)
        h.transport.clear()
        h.run(1.5)
        packets = h.transport.of_kind(GOSSIP)
        assert packets, "expected a gossip round"
        assert {e.msg_id.seq for e in packets[0].entries} == {1, 2, 3}

    def test_aggregation_limit_respected(self):
        h = ProtocolHarness(config=ProtocolConfig(gossip_aggregation_limit=2))
        h.protocol.start()
        for seq in (1, 2, 3, 4, 5):
            message = data_from(h, peer=2, seq=seq).with_gossip(
                gossip_from(h, 2, seq=seq))
            h.deliver(message, sender=2)
        h.transport.clear()
        h.run(1.5)
        packets = h.transport.of_kind(GOSSIP)
        assert packets
        assert all(len(p.entries) <= 2 for p in packets)
