"""Registry contract: registration, lookup, discovery, and the
config-key regression pin.

The pin matters most: moving protocol construction behind the arena
registry must not move a single campaign record — ``config_key`` for
pre-arena configurations is frozen here as literals computed before the
refactor.  If either literal changes, old campaign records, checkpoint
snapshots, and corpus reproducers silently stop resolving.
"""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.arena as arena
from repro.arena.registry import (
    ProtocolSpec,
    available_protocols,
    get_protocol,
    is_registered,
    load_entry_point_protocols,
    register_protocol,
    unregister_protocol,
)
from repro.sim import ExperimentConfig, config_key
from repro.workloads.scenarios import ScenarioConfig

pytestmark = pytest.mark.arena

BUILTINS = ("byzcast", "flooding", "overlay_only", "multi_overlay",
            "dolev", "optflood", "maurer_tixeuil")

#: Valid registry names: nonempty, lowercase ascii/digits/underscore.
names = st.text(alphabet=string.ascii_lowercase + string.digits + "_",
                min_size=1, max_size=24).filter(
                    lambda s: not s.startswith("_") and not is_registered(s))


def _factory(context):  # pragma: no cover - never built
    raise AssertionError("test factory must not be invoked")


# ----------------------------------------------------------------------
# Regression pin: the arena refactor must not move campaign keys
# ----------------------------------------------------------------------
def test_config_key_unchanged_for_default_protocol():
    config = ExperimentConfig(scenario=ScenarioConfig(n=12, seed=3))
    assert config.protocol == "byzcast"
    assert config_key(config) == "9a80eef65f028893"


def test_config_key_unchanged_for_flooding_baseline():
    config = ExperimentConfig(scenario=ScenarioConfig(n=40, seed=1),
                              protocol="flooding")
    assert config_key(config) == "5fa3f835d4b7dee2"


# ----------------------------------------------------------------------
# Built-in population
# ----------------------------------------------------------------------
def test_builtins_present_and_first():
    listed = available_protocols()
    assert tuple(listed[:len(BUILTINS)]) == BUILTINS
    for name in BUILTINS:
        spec = get_protocol(name)
        assert spec.provenance == "builtin"
        assert spec.mute_tolerance(12) >= 0


def test_unknown_protocol_lookup_lists_choices():
    with pytest.raises(ValueError, match="byzcast"):
        get_protocol("definitely_not_registered")


def test_experiment_config_rejects_unknown_protocol():
    with pytest.raises(ValueError, match="dolev"):
        ExperimentConfig(scenario=ScenarioConfig(n=8, seed=1),
                         protocol="definitely_not_registered")


# ----------------------------------------------------------------------
# Registration properties
# ----------------------------------------------------------------------
@given(name=names)
def test_register_lookup_unregister_roundtrip(name):
    try:
        spec = register_protocol(name, _factory, description="transient")
        assert isinstance(spec, ProtocolSpec)
        assert is_registered(name)
        assert get_protocol(name) is spec
        assert get_protocol(name).provenance == "external"
        assert name in available_protocols()
        # Externals never displace the built-in prefix ordering.
        assert tuple(available_protocols()[:len(BUILTINS)]) == BUILTINS
    finally:
        unregister_protocol(name)
    assert not is_registered(name)
    assert name not in available_protocols()


@given(name=names)
def test_duplicate_registration_rejected_unless_replace(name):
    try:
        register_protocol(name, _factory)
        with pytest.raises(ValueError, match="already registered"):
            register_protocol(name, _factory)
        # replace=True swaps the spec in place.
        swapped = register_protocol(name, _factory,
                                    description="v2", replace=True)
        assert get_protocol(name).description == "v2"
        assert get_protocol(name) is swapped
    finally:
        unregister_protocol(name)


@pytest.mark.parametrize("bad", ["", "has spaces", " padded ", "tab\tname",
                                 "new\nline"])
def test_invalid_names_rejected(bad):
    with pytest.raises(ValueError):
        register_protocol(bad, _factory)


def test_builtin_shadowing_requires_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_protocol("byzcast", _factory)


# ----------------------------------------------------------------------
# Entry-point discovery
# ----------------------------------------------------------------------
class _FakeEntryPoint:
    def __init__(self, name, loader):
        self.name = name
        self._loader = loader

    def load(self):
        return self._loader


class _FakeEntryPoints:
    """Mimics the importlib.metadata >= 3.10 ``.select`` API."""

    def __init__(self, entries):
        self._entries = entries

    def select(self, *, group):
        return self._entries if group == arena.ENTRY_POINT_GROUP else ()


def test_entry_point_discovery_registers(monkeypatch):
    import importlib.metadata as md

    def hook():
        register_protocol("ep_test_protocol", _factory,
                          description="from entry point")

    monkeypatch.setattr(md, "entry_points", lambda: _FakeEntryPoints(
        [_FakeEntryPoint("ep_test_protocol", hook)]))
    try:
        discovered = load_entry_point_protocols()
        assert "ep_test_protocol" in discovered
        assert is_registered("ep_test_protocol")
    finally:
        unregister_protocol("ep_test_protocol")


def test_entry_point_discovery_swallows_broken_plugins(monkeypatch):
    import importlib.metadata as md

    class _Broken:
        name = "broken_plugin"

        def load(self):
            raise ImportError("plugin is broken")

    monkeypatch.setattr(md, "entry_points",
                        lambda: _FakeEntryPoints([_Broken()]))
    assert load_entry_point_protocols() == []
    assert not is_registered("broken_plugin")
