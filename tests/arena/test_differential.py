"""Differential testing: rival protocols as cross-checking oracles.

On a fault-free world every correct broadcast protocol must compute the
same function — deliver every payload to every node.  Running two
independent implementations on the *identical* scenario and comparing
delivered payload sets node-for-node catches bugs a single-protocol
oracle cannot: a protocol that consistently drops (or invents) the same
message everywhere looks internally coherent, but disagrees with its
rival.

The anchor pair is the paper's stack vs signed flooding on E2's
fault-free workload shape (scaled to the conformance world size); the
sweep then pins every other registered rival against flooding.
"""

import pytest

import repro.arena as arena
from repro.sim import build_world, finish_world

from tests.arena.conftest import FAULT_FREE_SEED, N, arena_config

pytestmark = pytest.mark.arena

#: E2's workload shape (benchmarks/test_e2_delivery_vs_n.py), shrunk to
#: the conformance world: fault-free, several spaced broadcasts, long
#: drain.
E2_WORKLOAD = dict(message_count=4, message_interval=1.0)


def delivered_payloads(protocol: str, **overrides):
    """{node_id: {(msg_id, payload), ...}} plus each node's own sends."""
    config = arena_config(protocol, seed=FAULT_FREE_SEED, **overrides)
    world = build_world(config)
    seen = {node.node_id: set() for node in world.nodes}

    for node in world.nodes:
        node.add_accept_listener(
            lambda node_id, originator, payload, msg_id:
            seen[node_id].add((msg_id, bytes(payload))))
    finish_world(world)
    return seen


def assert_same_delivery(left: str, right: str, **overrides):
    ours = delivered_payloads(left, **overrides)
    theirs = delivered_payloads(right, **overrides)
    assert set(ours) == set(theirs)
    for node_id in ours:
        assert ours[node_id] == theirs[node_id], (
            f"node {node_id}: {left} and {right} disagree on the "
            f"delivered payload set")
    # A broadcaster does not re-deliver its own message, so the union
    # across nodes must cover message_count broadcasts at n-1 receivers.
    messages = {msg_id for per_node in ours.values()
                for msg_id, _ in per_node}
    assert len(messages) == E2_WORKLOAD["message_count"]
    assert sum(len(per_node) for per_node in ours.values()) == \
        len(messages) * (N - 1)


def test_byzcast_flooding_agree_on_e2_fault_free():
    """The satellite anchor: paper protocol vs flooding, node for node."""
    assert_same_delivery("byzcast", "flooding", **E2_WORKLOAD)


@pytest.mark.parametrize("rival", [name for name
                                   in arena.available_protocols()
                                   if name != "flooding"])
def test_every_rival_agrees_with_flooding(rival):
    assert_same_delivery(rival, "flooding", **E2_WORKLOAD)
