"""Shared fixtures for the arena conformance suite.

The suite's cost model: most assertions are read-only views over the same
small world, so runs are cached per session keyed by their campaign
``config_key`` — a protocol's fault-free run executes once no matter how
many conformance tests inspect it.  Tests that need a *fresh* execution
(determinism repeats, checkpoint interrupts) call ``run_experiment``
directly and say so.

Topology pinning: the liveness tests place the adversaries with the
default ``high_id`` policy and demand full delivery from every correct
node, which is only a fair ask when the correct subgraph can actually
carry a quorum.  Dolev (2 disjoint paths) and Maurer–Tixeuil (2 distinct
vouchers) structurally require the correct subgraph to be *biconnected*;
at ``n = 12`` / default degree the seeds below were verified to satisfy
that — and every registered protocol delivers 1.0 at its own declared
tolerance on them.  A new protocol that fails here is either genuinely
below its claimed threshold or needs a stronger topology precondition
declared.
"""

import json

import pytest

import repro.arena as arena
from repro.chaos import OracleConfig
from repro.sim import ExperimentConfig, config_key, run_experiment
from repro.sim.campaign import result_to_record
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

#: World size for every conformance run — small enough that the full
#: matrix stays fast, large enough for multi-hop topologies.
N = 12

#: Seeds whose correct subgraph stays biconnected after removing the
#: ``high_id`` adversaries at every registered protocol's tolerance
#: (verified empirically; see module docstring).
LIVENESS_SEEDS = (3, 7)

#: Fault-free runs use the first liveness seed.
FAULT_FREE_SEED = 3


def arena_config(protocol: str, *, seed: int = FAULT_FREE_SEED,
                 adversaries: AdversaryMix = None,
                 chaos=None, oracle: bool = True,
                 **overrides) -> ExperimentConfig:
    """One small conformance world: warmup, two broadcasts, drain."""
    scenario = ScenarioConfig(
        n=N, seed=seed, adversaries=adversaries or AdversaryMix())
    settings = dict(warmup=4.0, message_count=2,
                    message_interval=1.0, drain=8.0)
    settings.update(overrides)
    return ExperimentConfig(
        scenario=scenario, protocol=protocol, chaos=chaos,
        oracle=OracleConfig() if oracle else None, **settings)


def canonical(config: ExperimentConfig, result) -> str:
    """The byte string a campaign would persist for this run, minus the
    wall-clock ``runtime`` block (host timing is never part of the
    determinism contract — see :mod:`repro.telemetry.runtime`)."""
    record = result_to_record(config, result)
    record.pop("runtime", None)
    return json.dumps(record, sort_keys=True)


def canonical_sans_config(config: ExperimentConfig, result) -> str:
    """Canonical record minus the config block — the checkpoint/resume
    equivalence criterion (the config block carries the checkpoint
    settings themselves)."""
    record = result_to_record(config, result)
    record.pop("config")
    record.pop("runtime", None)
    return json.dumps(record, sort_keys=True)


@pytest.fixture(params=arena.available_protocols())
def protocol(request) -> str:
    """Parametrizes a test over every registered protocol."""
    return request.param


@pytest.fixture(scope="session")
def cached_run():
    """Session-scoped memoized ``run_experiment`` keyed by config_key.

    Safe because runs are deterministic functions of their config; tests
    must treat cached results as read-only.
    """
    cache = {}

    def run(config: ExperimentConfig):
        key = config_key(config)
        if key not in cache:
            cache[key] = run_experiment(config)
        return cache[key]

    return run


@pytest.fixture
def fault_free_run(protocol, cached_run):
    """The protocol's cached fault-free run (config, result) pair."""
    config = arena_config(protocol)
    return config, cached_run(config)
