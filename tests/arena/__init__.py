"""Cross-protocol conformance harness for the protocol arena.

Every protocol registered in :mod:`repro.arena` — the paper's stack, the
baselines, and the rival broadcast protocols — is run through one shared
parametrized suite: safety invariants, liveness at each protocol's
declared fault threshold, the determinism matrix, and chaos/fuzz
integration.  Registering a protocol buys the whole suite for free.
"""
