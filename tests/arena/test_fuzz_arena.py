"""Fuzzing loop integration: the arena protocols as fuzz targets.

Three contracts:

* A :class:`repro.fuzz.TargetSpec` accepts any registered protocol and a
  fault-free run of it is *healthy* (empty failure signature) — a rival
  whose baseline run already trips the signature would poison every
  fuzzing campaign pointed at it.
* The planted positive controls stay discoverable under the rivals:
  ``broken_forge``'s sabotage patches :class:`repro.arena.base.ArenaNode`
  alongside :class:`repro.core.node.NetworkNode`, so the same
  crash→restart core must light up ``forged_payload`` whichever
  ArenaNode-based protocol the fuzzer happens to be driving.
* The committed corpus reproducers replay cleanly when re-targeted at
  the rivals — node-level planted bugs are protocol-independent (the
  ``broken_purge`` entry is the documented exception: it sabotages the
  paper stack's MessageStore, which the rivals do not have).
"""

import os

import pytest

import repro.arena as arena
from repro.chaos import FaultEvent, FaultSchedule
from repro.fuzz import TargetSpec, load_corpus, replay

pytestmark = [pytest.mark.arena, pytest.mark.fuzz]

CORPUS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "corpus")

#: Protocols whose nodes subclass ArenaNode (plus the paper stack) —
#: exactly the set the planted node-level bugs are wired into.
SABOTAGE_AWARE = ("byzcast", "dolev", "optflood", "maurer_tixeuil")

#: The minimal reproducer core every planted bug is gated behind.
CRASH_RESTART = FaultSchedule(events=(
    FaultEvent(time=0.5, node=9, action="crash"),
    FaultEvent(time=1.5, node=9, action="restart"),
))


@pytest.fixture(params=arena.available_protocols())
def any_protocol(request):
    return request.param


def test_target_spec_accepts_protocol_and_baseline_is_healthy(any_protocol):
    target = TargetSpec(protocol=any_protocol)
    result = target.run()
    assert target.signature_of(result) == ()
    assert result.delivery_ratio == 1.0


@pytest.mark.parametrize("protocol", SABOTAGE_AWARE)
def test_planted_forge_found_under_rivals(protocol):
    target = TargetSpec(protocol=protocol, runner="broken_forge")
    signature = target.signature_of(target.run(CRASH_RESTART))
    assert "forged_payload" in signature


@pytest.mark.parametrize("protocol", SABOTAGE_AWARE)
def test_planted_bug_stays_gated_without_restart(protocol):
    """Crash alone must not arm the sabotage — the minimal reproducer is
    genuinely the crash→restart pair, under every protocol."""
    target = TargetSpec(protocol=protocol, runner="broken_forge")
    crash_only = FaultSchedule(events=CRASH_RESTART.events[:1])
    signature = target.signature_of(target.run(crash_only))
    assert "forged_payload" not in signature


@pytest.mark.parametrize("protocol", SABOTAGE_AWARE)
def test_corpus_reproducers_replay_per_protocol(protocol):
    entries = load_corpus(CORPUS_DIR)
    assert entries, "committed corpus is missing"
    replayed = 0
    for _, entry in entries:
        if entry.target.runner == "broken_purge":
            continue  # sabotages the paper stack's MessageStore only
        retargeted = TargetSpec.from_dict(
            {**entry.target.to_dict(), "protocol": protocol})
        verdict = replay(type(entry)(
            target=retargeted, schedule=entry.schedule,
            signature=entry.signature,
            found_iteration=entry.found_iteration, stats=entry.stats))
        assert verdict["reproduced"], (
            f"corpus entry {entry.signature} no longer reproduces "
            f"under {protocol}: got {verdict['signature']}")
        replayed += 1
    assert replayed >= 2
