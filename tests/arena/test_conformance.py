"""The cross-protocol conformance suite.

Every test here is parametrized over every registered protocol (via the
``protocol`` fixture) — registering an adapter in :mod:`repro.arena` buys
this whole contract for free:

* **Safety**: fault-free completeness, no forgery under forging
  adversaries, structural at-most-once / agreement on delivered
  payloads.
* **Liveness**: full delivery with ``mute_tolerance(n)`` Byzantine-mute
  nodes on topologies whose correct subgraph supports it.
* **Determinism matrix**: repeat runs, serial vs worker pool, grid vs
  brute-force medium indexing, interrupted-and-resumed checkpoints —
  all byte-identical at the campaign-record level.
* **Chaos**: a crash/restart/mute timeline applies cleanly (the adapter
  honours the controller's node contract) and stays deterministic.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.arena as arena
from repro.chaos import FaultEvent, FaultSchedule
from repro.sim import (
    CheckpointConfig,
    build_world,
    config_key,
    finish_world,
    latest_checkpoint,
    run_experiment,
    run_many,
)
from repro.workloads.scenarios import AdversaryMix

from tests.arena.conftest import (
    LIVENESS_SEEDS,
    N,
    arena_config,
    canonical,
    canonical_sans_config,
)
from tests.helpers import fault_schedules

pytestmark = pytest.mark.arena

#: Crash/restart plus a transient mute — exercises every chaos seam the
#: adapters must implement (``crash``/``restart``/``set_behavior``).
CHAOS_TIMELINE = FaultSchedule(events=(
    FaultEvent(time=1.0, node=2, action="crash"),
    FaultEvent(time=2.0, node=5, action="mute"),
    FaultEvent(time=3.5, node=2, action="restart"),
    FaultEvent(time=5.0, node=5, action="recover"),
))


# ----------------------------------------------------------------------
# Safety
# ----------------------------------------------------------------------
def test_fault_free_complete_delivery(fault_free_run):
    config, result = fault_free_run
    assert result.broadcasts == config.message_count
    assert result.delivery_ratio == 1.0
    assert result.complete_fraction == 1.0
    assert result.invariant_violations == 0


def test_no_forgery_under_forging_adversary(protocol, cached_run):
    config = arena_config(protocol,
                          adversaries=AdversaryMix.forging(1))
    result = cached_run(config)
    assert result.byzantine == 1
    kinds = {violation["invariant"] for violation in result.violations}
    assert "forged_payload" not in kinds
    assert result.invariant_violations == 0


def test_at_most_once_and_agreement(protocol):
    """Structural check, stronger than the oracle counters: every
    (node, msg_id) pair delivers exactly zero-or-one time, and all
    correct nodes that delivered a message agree on its payload."""
    config = arena_config(protocol)
    world = build_world(config)
    deliveries = []

    for node in world.nodes:
        node.add_accept_listener(
            lambda node_id, originator, payload, msg_id:
            deliveries.append((node_id, msg_id, bytes(payload))))
    finish_world(world)

    counts = {}
    payload_of = {}
    for node_id, msg_id, payload in deliveries:
        counts[(node_id, msg_id)] = counts.get((node_id, msg_id), 0) + 1
        payload_of.setdefault(msg_id, set()).add(payload)
    assert deliveries, "listener saw no deliveries at all"
    assert all(count == 1 for count in counts.values())
    assert all(len(payloads) == 1 for payloads in payload_of.values())


# ----------------------------------------------------------------------
# Liveness at the declared threshold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", LIVENESS_SEEDS)
def test_liveness_at_declared_tolerance(protocol, cached_run, seed):
    spec = arena.get_protocol(protocol)
    tolerance = spec.mute_tolerance(N)
    adversaries = (AdversaryMix.mute(tolerance) if tolerance
                   else AdversaryMix())
    config = arena_config(protocol, seed=seed, adversaries=adversaries)
    result = cached_run(config)
    assert result.byzantine == tolerance
    assert result.delivery_ratio == 1.0, (
        f"{protocol} claims tolerance {tolerance} but lost deliveries "
        f"at {tolerance} mute nodes (seed {seed})")
    assert result.complete_fraction == 1.0
    assert result.invariant_violations == 0


# ----------------------------------------------------------------------
# Determinism matrix
# ----------------------------------------------------------------------
def test_repeat_runs_byte_identical(fault_free_run):
    config, result = fault_free_run
    assert canonical(config, run_experiment(config)) == \
        canonical(config, result)


def test_worker_pool_matches_serial(cached_run):
    """One pool, every protocol: run_many across 4 workers must equal
    the serial runs element for element."""
    configs = [arena_config(name) for name in arena.available_protocols()]
    pooled = run_many(configs, workers=4)
    for config, result in zip(configs, pooled):
        assert canonical(config, result) == \
            canonical(config, cached_run(config))


def test_grid_and_brute_medium_agree(fault_free_run):
    from repro.radio.medium import Medium

    config, result = fault_free_run
    saved = Medium.DEFAULT_USE_GRID
    Medium.DEFAULT_USE_GRID = not saved
    try:
        flipped = run_experiment(config)
    finally:
        Medium.DEFAULT_USE_GRID = saved
    assert canonical(config, flipped) == canonical(config, result)


def test_checkpoint_resume_matches_uninterrupted(fault_free_run, tmp_path):
    config, result = fault_free_run
    ck = replace(config, checkpoint=CheckpointConfig(
        every=2.0, directory=str(tmp_path)))
    assert config_key(ck) == config_key(config)

    # Interrupt mid-workload, abandon, then let run_experiment pick the
    # snapshot back up.
    from repro.sim import write_checkpoint
    world = build_world(ck)
    world.sim.run(until=6.0)
    write_checkpoint(world, config_key(ck), str(tmp_path))

    resumed = run_experiment(ck)
    assert canonical_sans_config(ck, resumed) == \
        canonical_sans_config(config, result)
    assert latest_checkpoint(str(tmp_path), config_key(ck)) is None


# ----------------------------------------------------------------------
# Chaos-schedule conformance
# ----------------------------------------------------------------------
def test_chaos_timeline_applies_cleanly(protocol, cached_run):
    config = arena_config(protocol, chaos=CHAOS_TIMELINE)
    result = cached_run(config)
    assert result.chaos_events == len(CHAOS_TIMELINE.events)
    assert result.invariant_violations == 0


def test_chaos_timeline_deterministic(protocol, cached_run):
    config = arena_config(protocol, chaos=CHAOS_TIMELINE)
    assert canonical(config, run_experiment(config)) == \
        canonical(config, cached_run(config))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(arena.available_protocols()),
       schedule=fault_schedules(N, horizon=6.0, max_events=4,
                                include_attackers=False),
       seed=st.integers(min_value=1, max_value=50))
def test_arbitrary_chaos_stays_deterministic(name, schedule, seed):
    """Property form: any fault timeline hypothesis can draw, against
    any protocol, replays byte-identically — the arena adapters keep all
    randomness inside the seeded streams.  (``attacker_start`` events are
    excluded: they require the full byzcast stack and are rejected with a
    ValueError on rival protocols by design.)"""
    config = arena_config(name, seed=seed,
                          chaos=schedule if schedule.events else None)
    first = run_experiment(config)
    assert canonical(config, run_experiment(config)) == \
        canonical(config, first)


# ----------------------------------------------------------------------
# Node-object contract (what the chaos controller and oracle rely on)
# ----------------------------------------------------------------------
def test_factory_builds_full_population(protocol):
    world = build_world(arena_config(protocol, oracle=False))
    assert len(world.nodes) == N
    for node_id, node in enumerate(world.nodes):
        assert node.node_id == node_id
        for attr in ("position", "crashed", "broadcast", "crash",
                     "restart", "set_behavior", "add_accept_listener",
                     "accepted", "radio", "start", "stop"):
            assert hasattr(node, attr), \
                f"{protocol} node lacks {attr!r}"


def test_crash_restart_contract(protocol):
    world = build_world(arena_config(protocol, oracle=False))
    node = world.nodes[2]
    assert not node.crashed
    first = node.broadcast(b"before-crash")

    node.crash()
    assert node.crashed
    node.crash()  # idempotent
    assert node.crashed

    node.restart(reset_state=True)
    assert not node.crashed
    node.restart()  # restart of a live node is a no-op
    assert not node.crashed

    # The sequence counter survives the state wipe: a restarted node
    # must never reuse a message id.
    second = node.broadcast(b"after-restart")
    assert first != second
