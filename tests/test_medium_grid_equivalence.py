"""Medium-backend equivalence suite: grid vs brute force vs vectorized.

The spatial hash grid (`repro.radio.grid`) replaces the medium's
all-radios scan with a cell query, and the vectorized medium
(`repro.radio.vectorized`) replaces the per-radio resolution loop with
numpy mask arithmetic.  Either is only an optimisation if it is
*invisible*: every scenario must produce bit-for-bit identical physical
events, stats, and RNG consumption on all three backends.  This suite
pins that guarantee over seeded random placements, mobility traces, and
collision-heavy workloads (> 20 scenarios total, each run three ways).

The scenarios drive the medium directly (raw ``attach`` / ``transmit`` /
``update_position``) so the comparison covers the exact layers the
backends changed; a final set of tests re-runs the full experiment stack
on each backend and compares whole ``ExperimentResult`` objects.
"""

import dataclasses
import random

import pytest

from repro.des.kernel import Simulator
from repro.des.random import RandomStream
from repro.radio.geometry import Position
from repro.radio.medium import Medium, MediumObserver
from repro.radio.packet import Packet
from repro.radio.propagation import LogNormalShadowing, UnitDisk
from repro.radio.vectorized import VectorizedMedium
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

SIDE = 600.0

#: Constructor for each medium backend under test.
MEDIUM_KINDS = {
    "grid": lambda sim, rng, prop: Medium(sim, rng, prop, use_grid=True),
    "brute": lambda sim, rng, prop: Medium(sim, rng, prop, use_grid=False),
    "vectorized": lambda sim, rng, prop: VectorizedMedium(sim, rng, prop),
}


def _scenario_events(seed, n, *, heavy, mobile):
    """Deterministically pre-generate one scenario: positions, ranges,
    transmissions, and mobility waypoints (so both runs see identical
    inputs regardless of execution order)."""
    rng = random.Random(seed)
    positions = {i: Position(rng.uniform(0.0, SIDE), rng.uniform(0.0, SIDE))
                 for i in range(n)}
    ranges = {i: rng.uniform(60.0, 160.0) for i in range(n)}
    transmissions = []
    t = 0.0
    count = 150 if heavy else 60
    for _ in range(count):
        # Heavy mode packs sends inside one airtime so collisions and
        # half-duplex losses dominate.
        t += rng.uniform(0.0, 0.0008 if heavy else 0.01)
        transmissions.append((t, rng.randrange(n), rng.randint(20, 400)))
    moves = []
    if mobile:
        for step in range(1, 25):
            when = step * 0.025
            for _ in range(max(1, n // 4)):
                moves.append((when, rng.randrange(n),
                              Position(rng.uniform(0.0, SIDE),
                                       rng.uniform(0.0, SIDE))))
    return positions, ranges, transmissions, moves


def run_scenario(seed, medium_kind, *, n=30, heavy=False, mobile=False,
                 shadowing=False):
    """Run one generated scenario; return (event log, stats).

    ``medium_kind`` is a :data:`MEDIUM_KINDS` key, or (backwards
    compatible) a bool selecting grid/brute.
    """
    if medium_kind is True:
        medium_kind = "grid"
    elif medium_kind is False:
        medium_kind = "brute"
    positions, ranges, transmissions, moves = _scenario_events(
        seed, n, heavy=heavy, mobile=mobile)
    sim = Simulator()
    propagation = (LogNormalShadowing(sigma=0.25, background_loss=0.05)
                   if shadowing else UnitDisk())
    medium = MEDIUM_KINDS[medium_kind](sim, RandomStream(seed), propagation)
    log = []

    class Recorder(MediumObserver):
        def on_transmit(self, sender, packet):
            log.append(("tx", sim.now, sender))

        def on_deliver(self, receiver, packet):
            log.append(("rx", sim.now, receiver, packet.sender))

        def on_collision(self, receiver, packet):
            log.append(("col", sim.now, receiver, packet.sender))

    medium.add_observer(Recorder())
    for i in range(n):
        medium.attach(i, (lambda i=i: positions[i]), ranges[i],
                      (lambda packet, i=i:
                       log.append(("handler", sim.now, i, packet.sender))))

    def send(sender, size):
        medium.transmit(sender, Packet(sender=sender, payload=None,
                                       size_bytes=size, kind="data"))

    def move(node_id, position):
        positions[node_id] = position
        medium.update_position(node_id, position)

    for when, sender, size in transmissions:
        sim.schedule_at(when, send, sender, size)
    for when, node_id, position in moves:
        sim.schedule_at(when, move, node_id, position)
    sim.run()
    return log, medium.stats


def assert_equivalent(seed, **kwargs):
    log_grid, stats_grid = run_scenario(seed, "grid", **kwargs)
    for kind in ("brute", "vectorized"):
        log_other, stats_other = run_scenario(seed, kind, **kwargs)
        assert log_other == log_grid, kind
        assert stats_other == stats_grid, kind
    assert stats_grid.transmissions > 0
    assert stats_grid.deliveries > 0


class TestGridEquivalence:
    """20+ seeded scenarios: identical event logs and MediumStats."""

    @pytest.mark.parametrize("seed", range(8))
    def test_static_random_placement(self, seed):
        assert_equivalent(seed, n=30)

    @pytest.mark.parametrize("seed", range(6))
    def test_mobility_trace(self, seed):
        assert_equivalent(100 + seed, n=24, mobile=True)

    @pytest.mark.parametrize("seed", range(6))
    def test_collision_heavy(self, seed):
        log, stats = run_scenario(200 + seed, True, n=24, heavy=True)
        assert stats.collisions + stats.half_duplex_losses > 0
        assert_equivalent(200 + seed, n=24, heavy=True)

    @pytest.mark.parametrize("seed", range(4))
    def test_shadowing_consumes_identical_rng(self, seed):
        # LogNormalShadowing draws from the medium RNG on every in-reach
        # candidate; a superset mismatch would desynchronise the stream.
        assert_equivalent(300 + seed, n=24, mobile=True, shadowing=True)

    def test_grid_candidates_match_brute_force_after_range_filter(self):
        positions, ranges, _, _ = _scenario_events(7, 40, heavy=False,
                                                   mobile=False)
        sim = Simulator()
        medium = Medium(sim, RandomStream(7), UnitDisk(), use_grid=True)
        for i in range(40):
            medium.attach(i, (lambda i=i: positions[i]), ranges[i],
                          lambda packet: None)
        rng = random.Random(99)
        for _ in range(50):
            sender = rng.randrange(40)
            origin = positions[sender]
            reach = ranges[sender]
            exact = sorted(i for i in range(40)
                           if origin.within(positions[i], reach))
            candidates = medium._grid.candidates(origin, reach)
            assert set(candidates) >= set(exact)
            assert candidates == sorted(candidates)
            filtered = [i for i in candidates
                        if origin.within(positions[i], reach)]
            assert filtered == exact


class TestExperimentLevelEquivalence:
    """The full stack (MAC, protocol, mobility) with the grid globally
    disabled must reproduce grid results exactly."""

    FAST = dict(message_count=2, message_interval=1.0, warmup=4.0,
                drain=6.0)

    def _run(self, monkeypatch, use_grid, **scenario_kwargs):
        monkeypatch.setattr(Medium, "DEFAULT_USE_GRID", use_grid)
        config = ExperimentConfig(
            scenario=ScenarioConfig(n=14, seed=5, **scenario_kwargs),
            **self.FAST)
        # Clear the wall-clock runtime block — the only result field
        # allowed to differ between the two medium implementations.
        return dataclasses.replace(run_experiment(config), runtime=None)

    def test_static_experiment_identical(self, monkeypatch):
        assert (self._run(monkeypatch, True)
                == self._run(monkeypatch, False))

    def test_mobile_experiment_identical(self, monkeypatch):
        kwargs = dict(mobility="waypoint", speed_max=8.0)
        assert (self._run(monkeypatch, True, **kwargs)
                == self._run(monkeypatch, False, **kwargs))

    def test_adversarial_shadowing_experiment_identical(self, monkeypatch):
        kwargs = dict(propagation="shadowing",
                      adversaries=AdversaryMix.mute(2))
        assert (self._run(monkeypatch, True, **kwargs)
                == self._run(monkeypatch, False, **kwargs))

    def test_results_are_comparable(self, monkeypatch):
        result = self._run(monkeypatch, True)
        assert dataclasses.is_dataclass(result)
        assert result.delivery_ratio > 0
