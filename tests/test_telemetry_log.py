"""Structured JSONL logging: formatter, context binding, quiet default."""

import io
import json
import logging
import threading

from repro.telemetry.log import (
    bound,
    configure,
    current_fields,
    event,
    get_logger,
)

ROOT_LOGGER = logging.getLogger("repro")


def drain(handler_stream):
    return [json.loads(line)
            for line in handler_stream.getvalue().splitlines()]


class TestJsonOutput:
    def teardown_method(self):
        for handler in list(ROOT_LOGGER.handlers):
            if getattr(handler, "_repro_telemetry", False):
                ROOT_LOGGER.removeHandler(handler)

    def test_event_emits_one_json_object_per_line(self):
        stream = io.StringIO()
        configure(stream)
        log = get_logger("test.emit")
        event(log, "thing.happened", job_id="j1", count=3)
        (record,) = drain(stream)
        assert record["event"] == "thing.happened"
        assert record["job_id"] == "j1"
        assert record["count"] == 3
        assert record["level"] == "info"
        assert record["logger"] == "repro.test.emit"
        assert isinstance(record["ts"], float)

    def test_level_threading(self):
        stream = io.StringIO()
        configure(stream)
        log = get_logger("test.levels")
        event(log, "debug.event", level=logging.DEBUG)   # below INFO
        event(log, "error.event", level=logging.ERROR)
        records = drain(stream)
        assert [r["event"] for r in records] == ["error.event"]
        assert records[0]["level"] == "error"

    def test_plain_logging_calls_still_emit_valid_json(self):
        stream = io.StringIO()
        configure(stream)
        get_logger("test.plain").info("hello %s", "world")
        (record,) = drain(stream)
        assert record["message"] == "hello world"

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure(io.StringIO())
        configure(stream)   # replaces, does not stack
        event(get_logger("test.idem"), "once")
        assert len(drain(stream)) == 1
        marked = [h for h in ROOT_LOGGER.handlers
                  if getattr(h, "_repro_telemetry", False)]
        assert len(marked) == 1

    def test_exception_field(self):
        stream = io.StringIO()
        configure(stream)
        log = get_logger("test.exc")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            log.exception("failed")
        (record,) = drain(stream)
        assert "RuntimeError: boom" in record["exception"]


class TestBoundContext:
    def teardown_method(self):
        for handler in list(ROOT_LOGGER.handlers):
            if getattr(handler, "_repro_telemetry", False):
                ROOT_LOGGER.removeHandler(handler)

    def test_bound_fields_reach_events(self):
        stream = io.StringIO()
        configure(stream)
        log = get_logger("test.bound")
        with bound(job_id="j9"):
            event(log, "inner")
        event(log, "outer")
        inner, outer = drain(stream)
        assert inner["job_id"] == "j9"
        assert "job_id" not in outer

    def test_nested_binds_inner_wins_and_pop_on_exit(self):
        with bound(job_id="a", extra=1):
            with bound(job_id="b"):
                assert current_fields() == {"job_id": "b", "extra": 1}
            assert current_fields() == {"job_id": "a", "extra": 1}
        assert current_fields() == {}

    def test_bound_pops_even_when_body_raises(self):
        try:
            with bound(job_id="x"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert current_fields() == {}

    def test_explicit_fields_shadow_bound_ones(self):
        stream = io.StringIO()
        configure(stream)
        with bound(job_id="bound"):
            event(get_logger("test.shadow"), "e", job_id="explicit")
        (record,) = drain(stream)
        assert record["job_id"] == "explicit"

    def test_context_is_thread_local(self):
        seen = {}

        def worker():
            seen["fields"] = current_fields()

        with bound(job_id="main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["fields"] == {}


class TestQuietDefault:
    def test_no_output_without_configure(self, capsys):
        # The repo-wide default: libraries and tests see zero log noise.
        log = get_logger("test.quiet")
        event(log, "invisible", payload="x" * 100)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
