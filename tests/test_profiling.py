"""Per-phase cost profiler: sessions, instrumentation, determinism."""

import pytest

from repro import profiling
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.sim import ExperimentConfig, run_experiment
from repro.sim.campaign import result_to_record
from repro.tracing import TraceRecorder
from repro.workloads.scenarios import ScenarioConfig


@pytest.fixture(autouse=True)
def no_leaked_profiler():
    assert profiling.ACTIVE is None
    yield
    profiling.ACTIVE = None


class TestProfiler:
    def test_add_accumulates_counts_and_seconds(self):
        prof = profiling.Profiler()
        prof.add("crypto.verify", 0.25)
        prof.add("crypto.verify", 0.5)
        prof.add("crypto.verify_hit")
        assert prof.count("crypto.verify") == 2
        assert prof.seconds("crypto.verify") == pytest.approx(0.75)
        assert prof.count("crypto.verify_hit") == 1
        assert prof.seconds("crypto.verify_hit") == 0.0

    def test_unknown_phase_reads_zero(self):
        prof = profiling.Profiler()
        assert prof.count("nope") == 0
        assert prof.seconds("nope") == 0.0

    def test_time_context_manager(self):
        prof = profiling.Profiler()
        with prof.time("phase"):
            pass
        assert prof.count("phase") == 1
        assert prof.seconds("phase") >= 0.0

    def test_summary_is_sorted_plain_dict(self):
        prof = profiling.Profiler()
        prof.add("b.phase", 1.0)
        prof.add("a.phase", 2.0, count=3)
        summary = prof.summary()
        assert list(summary) == ["a.phase", "b.phase"]
        assert summary["a.phase"] == {"count": 3, "seconds": 2.0}

    def test_clear(self):
        prof = profiling.Profiler()
        prof.add("x", 1.0)
        prof.clear()
        assert prof.summary() == {}


class TestSession:
    def test_session_installs_and_restores(self):
        with profiling.session() as prof:
            assert profiling.ACTIVE is prof
            assert profiling.active() is prof
        assert profiling.ACTIVE is None

    def test_sessions_nest(self):
        with profiling.session() as outer:
            with profiling.session() as inner:
                assert profiling.ACTIVE is inner
            assert profiling.ACTIVE is outer
        assert profiling.ACTIVE is None

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with profiling.session():
                raise RuntimeError("boom")
        assert profiling.ACTIVE is None

    def test_activate_accepts_existing_profiler(self):
        prof = profiling.Profiler()
        try:
            assert profiling.activate(prof) is prof
            assert profiling.ACTIVE is prof
        finally:
            profiling.deactivate()
        assert profiling.ACTIVE is None


class TestInstrumentation:
    def test_crypto_phases_recorded_when_active(self):
        directory = KeyDirectory(HmacScheme(seed=b"prof"))
        signer = directory.issue(1)
        with profiling.session() as prof:
            signature = signer.sign(b"msg")
            directory.verify(1, b"msg", signature)
        assert prof.count("crypto.sign") == 1
        assert prof.count("crypto.verify") == 1

    def test_nothing_recorded_when_inactive(self):
        directory = KeyDirectory(HmacScheme(seed=b"prof"))
        signer = directory.issue(1)
        signature = signer.sign(b"msg")
        directory.verify(1, b"msg", signature)
        assert profiling.ACTIVE is None

    def test_kernel_event_phase(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        with profiling.session() as prof:
            sim.run()
        assert prof.count("kernel.event") == 2

    def test_verify_cache_hit_phase(self):
        directory = KeyDirectory(HmacScheme(seed=b"prof"))
        signer = directory.issue(1)
        view = directory.caching_view(8)
        signature = signer.sign(b"msg")
        with profiling.session() as prof:
            view.verify(1, b"msg", signature)
            view.verify(1, b"msg", signature)
        assert prof.count("crypto.verify") == 1
        assert prof.count("crypto.verify_hit") == 1


SMALL = dict(warmup=3.0, message_count=2, message_interval=1.0, drain=4.0)


class TestExperimentProfile:
    def test_profile_off_by_default(self):
        config = ExperimentConfig(scenario=ScenarioConfig(n=8, seed=3),
                                  **SMALL)
        result = run_experiment(config)
        assert result.profile is None
        assert result_to_record(config, result)["profile"] is None

    def test_profile_collected_and_session_closed(self):
        config = ExperimentConfig(scenario=ScenarioConfig(n=8, seed=3),
                                  profile=True, **SMALL)
        result = run_experiment(config)
        assert profiling.ACTIVE is None
        assert result.profile
        for phase in ("crypto.sign", "crypto.verify", "kernel.event",
                      "medium.complete"):
            assert result.profile[phase]["count"] > 0
            assert result.profile[phase]["seconds"] >= 0.0
        assert result_to_record(config, result)["profile"] is not None

    def test_phase_counts_deterministic(self):
        """Counts (not seconds) repeat exactly for a seeded run."""
        config = ExperimentConfig(scenario=ScenarioConfig(n=8, seed=3),
                                  profile=True, **SMALL)
        counts = [
            {phase: stats["count"]
             for phase, stats in run_experiment(config).profile.items()}
            for _ in range(2)
        ]
        assert counts[0] == counts[1]

    def test_profiling_does_not_change_results(self):
        """A profiled run's record equals the unprofiled run's record
        once the profile block itself is removed."""
        import json
        base = ExperimentConfig(scenario=ScenarioConfig(n=8, seed=3),
                                **SMALL)
        profiled = ExperimentConfig(scenario=ScenarioConfig(n=8, seed=3),
                                    profile=True, **SMALL)
        plain_rec = result_to_record(base, run_experiment(base))
        prof_rec = result_to_record(profiled, run_experiment(profiled))
        for record in (plain_rec, prof_rec):
            record.pop("profile")
            record.pop("key")      # config hash differs by the flag
            record.pop("config")
            record.pop("runtime", None)  # embeds profile totals + wall
        assert (json.dumps(plain_rec, sort_keys=True)
                == json.dumps(prof_rec, sort_keys=True))


class TestTracerProfile:
    def test_record_profile_emits_events(self):
        sim = Simulator()
        recorder = TraceRecorder(sim)
        prof = profiling.Profiler()
        prof.add("crypto.verify", 0.5, count=10)
        prof.add("codec.encode", 0.1, count=4)
        recorder.record_profile(prof)
        events = recorder.select(category="profile")
        assert len(events) == 2
        assert events[0].details == {"phase": "codec.encode", "count": 4,
                                     "seconds": 0.1}
        assert events[0].node == -1

    def test_profile_category_filterable(self):
        sim = Simulator()
        recorder = TraceRecorder(sim, categories=("tx",))
        prof = profiling.Profiler()
        prof.add("crypto.verify", 0.5)
        recorder.record_profile(prof)
        assert recorder.events == []
