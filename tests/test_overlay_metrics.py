"""Unit tests for omniscient overlay quality evaluation."""

import pytest

from repro.overlay.metrics import evaluate_overlay
from repro.radio.geometry import Position


POSITIONS = {0: Position(0, 0), 1: Position(80, 0), 2: Position(160, 0),
             3: Position(240, 0)}
ALL = set(POSITIONS)


def test_full_coverage_connected():
    quality = evaluate_overlay(POSITIONS, 100.0, {1, 2}, ALL)
    assert quality.coverage == 1.0
    assert quality.correct_overlay_connected
    assert quality.healthy
    assert quality.overlay_size == 2
    assert quality.overlay_fraction == pytest.approx(0.5)


def test_uncovered_node_detected():
    quality = evaluate_overlay(POSITIONS, 100.0, {1}, ALL)
    # node 3 at 240 is not within 100 of node 1 at 80
    assert quality.coverage == pytest.approx(3 / 4)
    assert not quality.healthy


def test_disconnected_overlay_detected():
    positions = {0: Position(0, 0), 1: Position(80, 0), 2: Position(160, 0),
                 3: Position(240, 0), 4: Position(320, 0)}
    quality = evaluate_overlay(positions, 100.0, {0, 4},
                               set(positions))
    assert not quality.correct_overlay_connected


def test_byzantine_members_excluded_from_correct_overlay():
    quality = evaluate_overlay(POSITIONS, 100.0, {1, 2},
                               correct_nodes={0, 1, 3})
    assert quality.overlay_size == 2
    assert quality.correct_overlay_size == 1
    # Node 3 only covered by (Byzantine) node 2 → not covered.
    assert quality.coverage == pytest.approx(2 / 3)


def test_overlay_member_counts_as_covered():
    quality = evaluate_overlay(POSITIONS, 100.0, ALL, ALL)
    assert quality.coverage == 1.0


def test_single_member_trivially_connected():
    quality = evaluate_overlay(POSITIONS, 100.0, {0}, {0})
    assert quality.correct_overlay_connected


def test_empty_positions_rejected():
    with pytest.raises(ValueError):
        evaluate_overlay({}, 100.0, set(), set())
