"""Tests for the fluent NetworkBuilder API."""

import pytest

from repro.adversary.behaviors import MuteBehavior
from repro.crypto import dsa
from repro.crypto.keystore import DsaScheme
from repro.radio.propagation import LogNormalShadowing
from repro.sim.network import NetworkBuilder


class TestPlacement:
    def test_line(self):
        net = NetworkBuilder(seed=2).line(4, spacing=80.0).build()
        assert len(net.nodes) == 4
        assert net.node(3).position.x == pytest.approx(240.0)

    def test_diamond(self):
        net = NetworkBuilder(seed=2).diamond().build()
        assert len(net.nodes) == 4

    def test_grid(self):
        net = NetworkBuilder(seed=2).grid(3, 2).build()
        assert len(net.nodes) == 6

    def test_at_and_positions_compose(self):
        net = (NetworkBuilder(seed=2)
               .at(0, 0).positions([(50, 0), (100, 0)]).build())
        assert len(net.nodes) == 3

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            NetworkBuilder().at(0, 0).build()

    def test_behavior_for_unknown_node_rejected(self):
        builder = NetworkBuilder().line(2).with_behavior(9, MuteBehavior())
        with pytest.raises(ValueError):
            builder.build()


class TestLiveNetwork:
    def test_end_to_end_delivery(self):
        net = NetworkBuilder(seed=3).line(4).build().warm_up()
        msg_id = net.nodes[0].broadcast(b"builder test")
        net.run(20.0)
        assert net.delivered_to_all(msg_id)
        assert net.delivered_to(msg_id) == {1, 2, 3}

    def test_overlay_members_listed(self):
        net = NetworkBuilder(seed=3).line(5).build().warm_up(10.0)
        members = net.overlay_members()
        assert members
        assert members <= {0, 1, 2, 3, 4}

    def test_behavior_applied(self):
        net = (NetworkBuilder(seed=3).diamond()
               .with_behavior(2, MuteBehavior()).build().warm_up())
        msg_id = net.nodes[0].broadcast(b"around")
        net.run(25.0)
        assert net.delivered_to_all(msg_id, exclude={2})

    def test_energy_meter_attached(self):
        net = NetworkBuilder(seed=3).line(3).with_energy().build().warm_up()
        assert net.energy is not None
        assert net.energy.meter(0).tx_packets > 0

    def test_tracer_attached(self):
        net = (NetworkBuilder(seed=3).line(3)
               .with_tracing("accept", "tx").build().warm_up())
        msg_id = net.nodes[0].broadcast(b"traced")
        net.run(10.0)
        assert net.tracer is not None
        accepts = net.tracer.select(category="accept")
        assert {e.node for e in accepts} == {1, 2}

    def test_custom_scheme(self):
        params = dsa.generate_parameters(p_bits=256, q_bits=160, seed=b"nb")
        net = (NetworkBuilder(seed=3).line(2)
               .with_scheme(DsaScheme(parameters=params, seed=b"nb"))
               .build().warm_up(5.0))
        msg_id = net.nodes[0].broadcast(b"dsa")
        net.run(10.0)
        assert net.delivered_to_all(msg_id)

    def test_custom_propagation(self):
        net = (NetworkBuilder(seed=3).line(3)
               .with_propagation(LogNormalShadowing(sigma=0.05,
                                                    background_loss=0.01))
               .build().warm_up())
        msg_id = net.nodes[0].broadcast(b"noisy")
        net.run(25.0)
        assert net.delivered_to_all(msg_id)

    def test_unstarted_build(self):
        net = NetworkBuilder(seed=3).line(2).build(start=False)
        net.run(3.0)
        # No hellos flowed: nobody discovered anybody.
        assert net.nodes[0].neighbors.neighbors() == []

    def test_stop(self):
        net = NetworkBuilder(seed=3).line(2).build().warm_up(3.0)
        net.stop()
        before = net.sim.events_fired
        net.run(5.0)
        # Periodic machinery halted: almost nothing fires after stop.
        assert net.sim.events_fired - before < 20
