"""Robustness tests: garbage input, mixed adversaries, real DSA
end-to-end, and codec-fuzzed frames fed straight into the protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.behaviors import (
    DeafBehavior,
    ForgingBehavior,
    GossipLiarBehavior,
    MuteBehavior,
    SelectiveDropBehavior,
)
from repro.core.messages import GossipPacket
from repro.core.wire import WireError, decode_message
from repro.crypto import dsa
from repro.crypto.keystore import DsaScheme, KeyDirectory
from repro.core.node import NetworkNode, NodeStackConfig
from repro.des.kernel import Simulator
from repro.des.random import RandomStream, StreamFactory
from repro.radio.geometry import Position
from repro.radio.medium import Medium
from repro.radio.packet import Packet

from tests.helpers import ProtocolHarness, build_network, line_coords


class TestGarbageInput:
    def test_unknown_payload_types_ignored(self):
        h = ProtocolHarness()
        for junk in ("a string", 42, None, {"dict": 1}, [1, 2], b"bytes",
                     object()):
            packet = Packet(sender=2, payload=junk, size_bytes=10)
            assert h.protocol.handle_packet(packet) is False
        assert h.accepted == []

    def test_empty_gossip_packet_harmless(self):
        h = ProtocolHarness()
        h.deliver(GossipPacket(entries=()), sender=2, kind="gossip")
        assert h.accepted == []

    def test_gossip_packet_with_many_entries(self):
        h = ProtocolHarness()
        entries = tuple(
            __import__("repro.core.messages", fromlist=["GossipMessage"])
            .GossipMessage.create(h.signers[2], seq) for seq in range(100))
        h.deliver(GossipPacket(entries=entries), sender=2, kind="gossip")
        assert h.protocol.stats.gossip_entries_received == 100

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=60))
    def test_fuzzed_frames_never_crash_decoder(self, data):
        try:
            decode_message(data)
        except WireError:
            pass


class TestMixedAdversaries:
    def test_four_simultaneous_behaviours(self):
        """Mute + forger + liar + dropper at once: correct nodes still
        converge on every broadcast."""
        coords = [(x * 70.0, y * 70.0) for x in range(4) for y in range(3)]
        rng = StreamFactory(3)
        behaviors = {
            11: MuteBehavior(),
            10: ForgingBehavior(rng.stream("f")),
            9: GossipLiarBehavior(),
            8: SelectiveDropBehavior(rng.stream("d"), 0.6),
        }
        sim, medium, nodes, _ = build_network(coords, 100.0, seed=9,
                                              behaviors=behaviors)
        sim.run(until=10.0)
        ids = [nodes[0].broadcast(f"m{i}".encode()) for i in range(3)]
        sim.run(until=sim.now + 40.0)
        byzantine = set(behaviors)
        for msg_id in ids:
            for node in nodes:
                if node.node_id in byzantine or node.node_id == 0:
                    continue
                assert any(rec[2] == msg_id for rec in node.accepted), \
                    f"node {node.node_id} missing {msg_id}"

    def test_deaf_node_does_not_block_others(self):
        sim, medium, nodes, _ = build_network(
            line_coords(4, 80.0), 100.0, behaviors={3: DeafBehavior()})
        sim.run(until=8.0)
        msg_id = nodes[0].broadcast(b"deaf test")
        sim.run(until=sim.now + 20.0)
        for node_id in (1, 2):
            assert any(rec[2] == msg_id for rec in nodes[node_id].accepted)


class TestRealDsaEndToEnd:
    def test_network_runs_on_real_dsa(self):
        """The full stack with genuine DSA signatures (smaller parameters
        for test speed): dissemination, hellos, and recovery all verify."""
        params = dsa.generate_parameters(p_bits=256, q_bits=160,
                                         seed=b"e2e")
        sim = Simulator()
        streams = StreamFactory(12)
        medium = Medium(sim, streams.stream("medium"))
        directory = KeyDirectory(DsaScheme(parameters=params, seed=b"e2e"))
        coords = line_coords(3, 80.0)
        nodes = [NetworkNode(sim, medium, i, Position(*coords[i]), 100.0,
                             streams, directory, NodeStackConfig())
                 for i in range(3)]
        for node in nodes:
            node.start()
        sim.run(until=6.0)
        msg_id = nodes[0].broadcast(b"signed with real DSA")
        sim.run(until=sim.now + 12.0)
        for node in nodes[1:]:
            assert any(rec[2] == msg_id for rec in node.accepted)
            assert node.protocol.stats.bad_signatures == 0

    def test_forgery_detected_under_real_dsa(self):
        params = dsa.generate_parameters(p_bits=256, q_bits=160,
                                         seed=b"e2e2")
        sim = Simulator()
        streams = StreamFactory(12)
        medium = Medium(sim, streams.stream("medium"))
        directory = KeyDirectory(DsaScheme(parameters=params, seed=b"e2e2"))
        coords = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]
        rng = RandomStream(4)
        nodes = [NetworkNode(sim, medium, i, Position(*coords[i]), 100.0,
                             streams, directory, NodeStackConfig(),
                             behavior=(ForgingBehavior(rng) if i == 2
                                       else None))
                 for i in range(4)]
        for node in nodes:
            node.start()
        sim.run(until=6.0)
        msg_id = nodes[0].broadcast(b"tamper target")
        sim.run(until=sim.now + 15.0)
        assert any(rec[2] == msg_id for rec in nodes[3].accepted)
        bad = sum(n.protocol.stats.bad_signatures for n in nodes
                  if n.node_id != 2)
        assert bad > 0  # the corruption was actually caught by DSA


class TestHighLoad:
    def test_many_messages_from_many_sources(self):
        sim, medium, nodes, _ = build_network(line_coords(5, 80.0), 100.0,
                                              seed=8)
        sim.run(until=8.0)
        ids = []
        for round_no in range(4):
            for source in (0, 2, 4):
                ids.append(nodes[source].broadcast(
                    f"{source}-{round_no}".encode()))
            sim.run(until=sim.now + 1.0)
        sim.run(until=sim.now + 30.0)
        for msg_id in ids:
            for node in nodes:
                if node.node_id == msg_id.originator:
                    continue
                assert any(rec[2] == msg_id for rec in node.accepted), \
                    f"{node.node_id} missing {msg_id}"

    def test_queue_pressure_does_not_deadlock(self):
        from repro.radio.mac import MacConfig
        stack = NodeStackConfig(mac=MacConfig(queue_limit=8))
        sim, medium, nodes, _ = build_network(line_coords(3, 80.0), 100.0,
                                              stack=stack)
        sim.run(until=8.0)
        ids = [nodes[0].broadcast(f"b{i}".encode()) for i in range(20)]
        sim.run(until=sim.now + 60.0)
        # Some MAC queue drops are expected; gossip recovery heals them.
        delivered = sum(
            1 for msg_id in ids
            if all(any(rec[2] == msg_id for rec in node.accepted)
                   for node in nodes[1:]))
        assert delivered == len(ids)
