"""Unit tests for declarative fault schedules (repro.chaos.schedule)."""

import json

import pytest

from repro.chaos import (
    FAULT_ACTIONS,
    FaultEvent,
    FaultSchedule,
    behavior_window,
    crash_restart,
    mute_onset,
)


class TestFaultEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(time=-1.0, node=0, action="mute")

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(time=0.0, node=-2, action="mute")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(time=0.0, node=0, action="explode")

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not accept params"):
            FaultEvent(time=0.0, node=0, action="mute",
                       params={"volume": 11})

    def test_behavior_requires_kind(self):
        with pytest.raises(ValueError, match="'kind'"):
            FaultEvent(time=0.0, node=0, action="behavior")

    def test_behavior_passes_open_params(self):
        event = FaultEvent(time=0.0, node=0, action="behavior",
                           params={"kind": "selective_drop",
                                   "drop_probability": 0.5})
        assert event.params["kind"] == "selective_drop"

    def test_every_declared_action_constructs(self):
        for action in FAULT_ACTIONS:
            params = {"kind": "mute"} if action == "behavior" else {}
            FaultEvent(time=1.0, node=3, action=action, params=params)


class TestFaultEventDicts:
    def test_round_trip(self):
        event = FaultEvent(time=2.5, node=7, action="tx_power",
                           params={"factor": 0.5})
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_params_omitted_when_empty(self):
        assert "params" not in FaultEvent(time=0, node=0,
                                          action="crash").to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-event keys"):
            FaultEvent.from_dict({"time": 0, "node": 0, "action": "mute",
                                  "reason": "testing"})


class TestFaultSchedule:
    def test_empty_is_falsy(self):
        schedule = FaultSchedule()
        assert not schedule
        assert len(schedule) == 0
        assert schedule.horizon == 0.0
        assert schedule.nodes() == []

    def test_horizon_and_nodes(self):
        schedule = FaultSchedule(events=(
            FaultEvent(time=4.0, node=2, action="mute"),
            FaultEvent(time=1.0, node=5, action="crash"),
            FaultEvent(time=2.0, node=2, action="recover"),
        ))
        assert schedule.horizon == 4.0
        assert schedule.nodes() == [2, 5]

    def test_extended_appends_without_mutating(self):
        base = FaultSchedule(events=(
            FaultEvent(time=0.0, node=1, action="mute"),))
        extra = base.extended(FaultEvent(time=1.0, node=1, action="recover"))
        assert len(base) == 1
        assert len(extra) == 2

    def test_events_coerced_to_tuple(self):
        schedule = FaultSchedule(
            events=[FaultEvent(time=0.0, node=0, action="deaf")])
        assert isinstance(schedule.events, tuple)

    def test_json_round_trip(self):
        schedule = mute_onset([3, 4], onset=2.0, recovery=9.0).extended(
            FaultEvent(time=1.0, node=0, action="attacker_start",
                       params={"kind": "gossip_flood", "rate_hz": 4.0}))
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_from_file(self, tmp_path):
        schedule = crash_restart([1], crash_at=2.0, restart_at=6.0)
        path = tmp_path / "spec.json"
        path.write_text(schedule.to_json())
        assert FaultSchedule.from_file(str(path)) == schedule

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-schedule keys"):
            FaultSchedule.from_dict({"events": [], "version": 2})

    def test_example_spec_parses(self):
        from pathlib import Path
        spec = (Path(__file__).resolve().parents[1] / "examples"
                / "chaos_mute_onset.json")
        schedule = FaultSchedule.from_file(str(spec))
        actions = {event.action for event in schedule.events}
        assert actions == {"mute", "recover"}


class TestPresets:
    def test_mute_onset_orders_recovery_after_onset(self):
        with pytest.raises(ValueError, match="after onset"):
            mute_onset([1], onset=5.0, recovery=5.0)

    def test_mute_onset_deduplicates_nodes(self):
        schedule = mute_onset([2, 2, 1], onset=1.0)
        assert [event.node for event in schedule.events] == [1, 2]

    def test_crash_restart_carries_reset_flag(self):
        schedule = crash_restart([0], crash_at=1.0, restart_at=3.0,
                                 reset_state=False)
        restart = schedule.events[-1]
        assert restart.action == "restart"
        assert restart.params["reset_state"] is False

    def test_crash_restart_ordering_enforced(self):
        with pytest.raises(ValueError, match="after the crash"):
            crash_restart([0], crash_at=3.0, restart_at=2.0)

    def test_behavior_window_recovers_at_end(self):
        schedule = behavior_window(4, "forging", start=1.0, end=5.0)
        assert [event.action for event in schedule.events] \
            == ["behavior", "recover"]

    def test_behavior_window_ordering_enforced(self):
        with pytest.raises(ValueError, match="after start"):
            behavior_window(4, "forging", start=5.0, end=1.0)
