"""Top-up tests for remaining edge paths across modules."""

import pytest

from repro.core.messages import DataMessage, GossipMessage, MessageId
from repro.core.store import MessageStore
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.overlay.metrics import OverlayQuality
from repro.radio.geometry import Position


@pytest.fixture
def signer():
    return KeyDirectory(HmacScheme(seed=b"misc")).issue(1)


class TestGossipBatches:
    def fill(self, store, signer, count):
        for seq in range(count):
            store.add_message(DataMessage.create(signer, seq, b"x"), 0.0)
            store.add_gossip(GossipMessage.create(signer, seq))
            store.start_gossiping(MessageId(1, seq), 0.0)

    def test_splits_into_limit_sized_packets(self, signer):
        store = MessageStore()
        self.fill(store, signer, 7)
        batches = store.gossip_batches(3)
        assert [len(b) for b in batches] == [3, 3, 1]
        seqs = {g.msg_id.seq for batch in batches for g in batch}
        assert seqs == set(range(7))

    def test_limit_one_is_one_packet_per_entry(self, signer):
        store = MessageStore()
        self.fill(store, signer, 4)
        batches = store.gossip_batches(1)
        assert len(batches) == 4
        assert all(len(b) == 1 for b in batches)

    def test_age_filter(self, signer):
        store = MessageStore()
        store.add_message(DataMessage.create(signer, 1, b"x"), 0.0)
        store.add_gossip(GossipMessage.create(signer, 1))
        store.start_gossiping(MessageId(1, 1), 0.0)
        assert store.gossip_batches(8, now=100.0, max_age=6.0) == []

    def test_invalid_limit(self, signer):
        with pytest.raises(ValueError):
            MessageStore().gossip_batches(0)

    def test_purge_one(self, signer):
        store = MessageStore()
        self.fill(store, signer, 2)
        assert store.purge_one(MessageId(1, 0))
        assert not store.purge_one(MessageId(1, 0))  # already gone
        assert store.message(MessageId(1, 0)) is None
        assert store.message(MessageId(1, 1)) is not None


class TestOverlayQualityHealthy:
    def test_healthy_requires_both(self):
        good = OverlayQuality(overlay_size=2, correct_overlay_size=2,
                              coverage=1.0, correct_overlay_connected=True,
                              overlay_fraction=0.5)
        assert good.healthy
        uncovered = OverlayQuality(overlay_size=2, correct_overlay_size=2,
                                   coverage=0.9,
                                   correct_overlay_connected=True,
                                   overlay_fraction=0.5)
        assert not uncovered.healthy
        split = OverlayQuality(overlay_size=2, correct_overlay_size=2,
                               coverage=1.0,
                               correct_overlay_connected=False,
                               overlay_fraction=0.5)
        assert not split.healthy


class TestCliExtras:
    def test_gaussmarkov_mobility_flag(self):
        import io
        from repro.cli import main
        out = io.StringIO()
        code = main(["run", "--n", "10", "--mobility", "gaussmarkov",
                     "--messages", "2", "--warmup", "4", "--drain", "6",
                     "--interval", "1.0", "--seed", "3"], out=out)
        assert code == 0
        assert "delivery" in out.getvalue()

    def test_misb_rule_flag(self):
        import io
        from repro.cli import main
        out = io.StringIO()
        code = main(["run", "--n", "10", "--rule", "mis+b",
                     "--messages", "2", "--warmup", "5", "--drain", "6",
                     "--interval", "1.0", "--seed", "3"], out=out)
        assert code == 0


class TestGeometryEdge:
    def test_zero_distance(self):
        p = Position(3.0, 4.0)
        assert p.distance_to(p) == 0.0
        assert p.within(p, 0.1)

    def test_within_zero_radius(self):
        assert not Position(0, 0).within(Position(0, 0), 0.0)


class TestEnvelopeRepr:
    def test_sign_fields_tuple_normalization(self):
        from repro.crypto.envelope import sign_fields
        directory = KeyDirectory(HmacScheme(seed=b"env"))
        signer = directory.issue(5)
        envelope = sign_fields(signer, [1, "two"])  # list input
        assert envelope.fields == (1, "two")        # stored as tuple
        assert envelope.verify(directory)
