"""E3 — Failure-free dissemination latency vs network size.

Overlay-path deliveries are fast (multi-hop MAC latency); the recovery tail
adds up to roughly one gossip+request+rebroadcast cycle for receptions that
needed it.  Every completion must stay far below the §3.5 worst-case bound
``max_timeout·(n−1)``.
"""

from repro.core.config import ProtocolConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once, replicated

NS = (20, 40, 60)
WORKLOAD = dict(message_count=8, message_interval=1.0, warmup=8.0,
                drain=15.0)


def run_sweep():
    rows = []
    for n in NS:
        scenario = ScenarioConfig(n=n)
        for protocol in ("byzcast", "flooding"):
            result = replicated(ExperimentConfig(
                scenario=scenario, protocol=protocol, **WORKLOAD))
            rows.append({
                "n": n,
                "protocol": protocol,
                "mean_latency_s": round(result.mean_latency, 4),
                "max_latency_s": round(result.max_latency, 4),
                "mean_completion_s": round(
                    result.mean_completion_latency, 4)
                if result.mean_completion_latency is not None else None,
            })
    return rows


def test_e3_latency_vs_n(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e3_latency_vs_n", "E3: failure-free latency vs n (seconds)", rows)
    bound_config = ProtocolConfig()
    for row in rows:
        if row["protocol"] != "byzcast":
            continue
        bound = bound_config.max_timeout() * (row["n"] - 1)
        # Mean path latency is MAC-scale (tens of ms), far below the bound.
        assert row["mean_latency_s"] < 0.5
        assert row["max_latency_s"] < bound
