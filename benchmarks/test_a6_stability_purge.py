"""A6 — Purging strategies: timeout (the paper's choice) vs stability
detection (the alternative §3.2.2 names).

Timeout purging is simple but holds every message for the full worst-case
window; stability detection releases buffers as soon as the ack horizon
shows everyone in view has delivered.  Measured: peak buffer occupancy and
delivery, under a steady multi-message workload on a line (where holding
times matter most).
"""

from repro.core.config import ProtocolConfig
from repro.core.node import NetworkNode, NodeStackConfig
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.radio.geometry import Position
from repro.reliable.channel import ReliableChannel
from repro.radio.medium import Medium

from common import emit, once

N = 5
MESSAGES = 12
TIMEOUT_RETENTION = 30.0


def run_variant(stability_purge: bool):
    sim = Simulator()
    streams = StreamFactory(23)
    medium = Medium(sim, streams.stream("medium"))
    directory = KeyDirectory(HmacScheme(seed=b"a6"))
    stack = NodeStackConfig(protocol=ProtocolConfig(
        purge_timeout=TIMEOUT_RETENTION, purge_period=1.0))
    nodes = [NetworkNode(sim, medium, i, Position(i * 80.0, 0.0), 100.0,
                         streams, directory, stack)
             for i in range(N)]
    deliveries = {node.node_id: [] for node in nodes}
    channels = [ReliableChannel(
        sim, node,
        deliver=lambda s, q, p, nid=node.node_id:
        deliveries[nid].append((s, q)),
        stability_purge=stability_purge, purge_period=1.0)
        for node in nodes]
    for node in nodes:
        node.start()
    sim.run(until=8.0)
    for i in range(MESSAGES):
        channels[0].send(f"m{i}".encode())
        sim.run(until=sim.now + 1.0)
    sim.run(until=sim.now + 15.0)
    peak_buffer = max(node.protocol.stats.max_buffer for node in nodes)
    end_buffer = max(node.protocol.store.buffered_count for node in nodes)
    tail = deliveries[N - 1]
    in_order = [seq for source, seq in tail if source == 0]
    return {
        "purging": "stability" if stability_purge else "timeout",
        "peak_buffer_msgs": peak_buffer,
        "end_buffer_msgs": end_buffer,
        "fifo_delivered": len(in_order),
        "fifo_in_order": in_order == sorted(in_order),
    }


def run_comparison():
    return [run_variant(False), run_variant(True)]


def test_a6_stability_purge(benchmark):
    rows = once(benchmark, run_comparison)
    emit("a6_stability_purge",
         f"A6: timeout vs stability purging (n={N}, {MESSAGES} msgs)",
         rows)
    timeout = next(r for r in rows if r["purging"] == "timeout")
    stability = next(r for r in rows if r["purging"] == "stability")
    # Both deliver everything, in order.
    for row in rows:
        assert row["fifo_delivered"] == MESSAGES
        assert row["fifo_in_order"]
    # Stability releases buffers earlier than the 30 s timeout window.
    assert stability["peak_buffer_msgs"] <= timeout["peak_buffer_msgs"]
    assert stability["peak_buffer_msgs"] < MESSAGES
