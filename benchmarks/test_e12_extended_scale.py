"""E12-extended — the two-tier scale curve (extension experiment).

E12 stops at the paper's hundred-node scale.  This benchmark pushes one
order of magnitude further on each tier:

* **packet tier** (vectorized medium): full event-level flooding runs at
  n = 500 … 5000 — 10x beyond the E1–E6 sweep ceiling of n=500;
* **fluid tier** (mean-field recurrence): the same scenario family at
  n = 500 … 100 000 — 100x beyond any packet run, in milliseconds.

On the overlapping n the two tiers must agree: the fluid calibration
bound promises delivery within ±0.05 of packet level for the calibrated
protocol class (flooding / byzcast / optflood; see
``src/repro/sim/fluid.py``).  That bound is asserted here, on real
packet runs, at every overlapping point.

Geometry is the constant-degree regime (``ScenarioConfig`` sizes the
area for mean degree 8), so delivery is comparable across n and the
curve isolates scale, not density.

Smoke mode (``REPRO_BENCH_SMOKE=1``) caps the packet curve at n=2000 so
CI can afford it; the committed ``results/e12_extended_scale.txt`` is
the full-scale run.
"""

import os
import time

from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

PACKET_NS = (500, 1000, 2000) if SMOKE else (500, 1000, 2000, 5000)
FLUID_NS = ((500, 1000, 2000, 20_000, 50_000) if SMOKE else
            (500, 1000, 2000, 5000, 20_000, 50_000, 100_000))
WORKLOAD = dict(protocol="flooding", message_count=1,
                message_interval=1.0, warmup=2.0, drain=8.0)
ERROR_BOUND = 0.05


def _config(n, **overrides):
    return ExperimentConfig(scenario=ScenarioConfig(n=n, seed=1),
                            **WORKLOAD, **overrides)


def run_measurement():
    rows = []
    packet_delivery = {}
    for n in PACKET_NS:
        start = time.perf_counter()
        result = run_experiment(_config(n, medium="vectorized"))
        wall = time.perf_counter() - start
        packet_delivery[n] = result.delivery_ratio
        rows.append({
            "tier": "packet", "n": n,
            "delivery": round(result.delivery_ratio, 4),
            "tx/bcast": round(result.transmissions_per_broadcast, 1),
            "abs_err": "",
            "wall_s": round(wall, 2),
        })
    for n in FLUID_NS:
        start = time.perf_counter()
        result = run_experiment(_config(n, tier="fluid"))
        wall = time.perf_counter() - start
        reference = packet_delivery.get(n)
        rows.append({
            "tier": "fluid", "n": n,
            "delivery": round(result.delivery_ratio, 4),
            "tx/bcast": round(result.transmissions_per_broadcast, 1),
            "abs_err": ("" if reference is None else
                        round(abs(result.delivery_ratio - reference), 4)),
            "wall_s": round(wall, 2),
        })
    return rows


def test_e12_extended_scale(benchmark):
    rows = once(benchmark, run_measurement)
    emit("e12_extended_scale",
         "E12-extended: packet tier to n=5000, fluid tier to n=100000",
         rows)
    packet = [r for r in rows if r["tier"] == "packet"]
    fluid = [r for r in rows if r["tier"] == "fluid"]
    # Scale reach: 10x beyond the n=500 sweep ceiling on the packet
    # tier, 100x on the fluid tier (packet floor relaxed in smoke mode).
    assert max(r["n"] for r in packet) >= (2000 if SMOKE else 5000)
    assert max(r["n"] for r in fluid) >= 50_000
    # Flooding over a degree-8 connected placement delivers everywhere.
    for row in packet:
        assert row["delivery"] > 0.95, row
    # Calibration bound: fluid within ±0.05 of packet at every
    # overlapping n (flooding is in the calibrated class).
    overlaps = [r for r in fluid if r["abs_err"] != ""]
    assert len(overlaps) == len(PACKET_NS)
    for row in overlaps:
        assert row["abs_err"] <= ERROR_BOUND, row
    # The fluid tier is what buys the 100x: even n=100000 is near-instant.
    assert max(r["wall_s"] for r in fluid) < 5.0
