"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one table/figure of the (reconstructed)
evaluation — see DESIGN.md's per-experiment index.  Results are printed and
also written to ``benchmarks/results/<name>.txt`` so the harness output
survives pytest's capture.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Sequence

from repro.sim.experiment import ExperimentConfig, ExperimentResult, \
    run_experiment
from repro.sim.render import format_rows, format_table
from repro.sim.sweeps import average_results

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Seeds used for replication in every sweep benchmark.
SEEDS = (1, 2)


def replicated(config: ExperimentConfig,
               seeds: Sequence[int] = SEEDS) -> ExperimentResult:
    """Run ``config`` once per seed and average."""
    results = []
    for seed in seeds:
        scenario = config.scenario.with_seed(seed)
        results.append(run_experiment(
            _replace_scenario(config, scenario)))
    return average_results(results)


def _replace_scenario(config: ExperimentConfig, scenario):
    from dataclasses import replace
    return replace(config, scenario=scenario)


def emit(name: str, title: str, rows: List[Dict[str, object]]) -> str:
    """Render, print, and persist one experiment table."""
    table = f"== {title} ==\n{format_rows(rows)}\n"
    print(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(table)
    return table


def emit_table(name: str, title: str, headers: Sequence[str],
               rows) -> str:
    table = f"== {title} ==\n{format_table(headers, rows)}\n"
    print(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(table)
    return table


def once(benchmark, fn: Callable[[], object]):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
