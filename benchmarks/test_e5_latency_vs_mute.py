"""E5 — Dissemination latency vs number of mute overlay nodes.

Receptions that lose their overlay path fall back to the gossip→request→
rebroadcast cycle, whose cost is bounded by ``max_timeout`` per hop: the
latency tail stretches as mute nodes multiply, while delivery stays
complete (E4).
"""

from repro.core.config import ProtocolConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

N = 40
MUTE_COUNTS = (0, 4, 8)
WORKLOAD = dict(message_count=6, message_interval=1.5, warmup=8.0,
                drain=25.0)


def run_sweep():
    rows = []
    for mute in MUTE_COUNTS:
        scenario = ScenarioConfig(n=N, adversaries=AdversaryMix.mute(mute))
        result = replicated(ExperimentConfig(scenario=scenario, **WORKLOAD))
        rows.append({
            "mute_nodes": mute,
            "delivery": round(result.delivery_ratio, 4),
            "mean_latency_s": round(result.mean_latency, 4),
            "max_latency_s": round(result.max_latency, 4),
            "mean_completion_s": round(result.mean_completion_latency, 4)
            if result.mean_completion_latency is not None else None,
        })
    return rows


def test_e5_latency_vs_mute(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e5_latency_vs_mute",
         f"E5: protocol latency vs mute overlay nodes (n={N})", rows)
    base = rows[0]
    worst = rows[-1]
    # Recovery is engaged: the completion latency at the highest fault
    # level exceeds the failure-free one.
    assert worst["mean_completion_s"] >= base["mean_completion_s"]
    # Yet every completion stays within the analysis bound.
    bound = ProtocolConfig().max_timeout() * (N - 1)
    for row in rows:
        assert row["max_latency_s"] < bound
        assert row["delivery"] >= 0.999
