"""A4 — Cryptographic cost: real DSA vs the HMAC simulation oracle.

The paper signs every message with DSA.  This microbenchmark quantifies
the per-operation cost of the from-scratch DSA implementation against the
HMAC oracle used in large sweeps, justifying the substitution documented
in DESIGN.md (the oracle preserves the interface and the unforgeability
contract, at orders-of-magnitude lower cost).
"""

import pytest

from repro.crypto import dsa
from repro.crypto.keystore import DsaScheme, HmacScheme

PARAMS = dsa.generate_parameters(p_bits=512, q_bits=160, seed=b"a4")
MESSAGE = b"benchmark message payload" * 8


@pytest.fixture(scope="module")
def dsa_scheme():
    scheme = DsaScheme(parameters=PARAMS, seed=b"a4")
    signer = scheme.register(1)
    return scheme, signer


@pytest.fixture(scope="module")
def hmac_scheme():
    scheme = HmacScheme(seed=b"a4")
    signer = scheme.register(1)
    return scheme, signer


def test_a4_dsa_sign(benchmark, dsa_scheme):
    _, signer = dsa_scheme
    signature = benchmark(signer.sign, MESSAGE)
    assert signature


def test_a4_dsa_verify(benchmark, dsa_scheme):
    scheme, signer = dsa_scheme
    signature = signer.sign(MESSAGE)
    assert benchmark(scheme.verify, 1, MESSAGE, signature)


def test_a4_hmac_sign(benchmark, hmac_scheme):
    _, signer = hmac_scheme
    signature = benchmark(signer.sign, MESSAGE)
    assert signature


def test_a4_hmac_verify(benchmark, hmac_scheme):
    scheme, signer = hmac_scheme
    signature = signer.sign(MESSAGE)
    assert benchmark(scheme.verify, 1, MESSAGE, signature)
