"""E13 — Mid-run mute onset vs permanent mute (extension).

The paper's evaluation flips nodes Byzantine before the run starts, so a
mute node never earns its way into the overlay.  The nastier regime is
*onset*: nodes behave correctly long enough to be elected into the
overlay — id-based election prefers exactly the high-id nodes we target —
and only then go silent, leaving a hole the failure detectors must notice
mid-broadcast.  The chaos timeline expresses this directly; the invariant
oracle rides along and must stay silent (no forged/duplicate delivery, no
§3.5 bound violated on unfaulted nodes).

Reported per regime (fault-free / permanent mute / mid-run onset /
onset + recovery): delivery ratio, mean latency, DATA tx per broadcast,
and the oracle's violation count.
"""

from dataclasses import replace

from repro.chaos import OracleConfig, mute_onset
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

N = 40
MUTED = 4                       # the 4 highest ids — overlay favourites
ONSET = 2.0                     # seconds after the first broadcast window
RECOVERY = 14.0


def base_config(seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        scenario=ScenarioConfig(n=N, seed=seed),
        oracle=OracleConfig(),
        warmup=8.0, message_count=5, message_interval=2.0, drain=18.0)


def regime_configs():
    base = base_config()
    muted_ids = list(range(N - MUTED, N))
    return (
        ("fault_free", base),
        ("permanent_mute", replace(
            base, scenario=replace(base.scenario,
                                   adversaries=AdversaryMix.mute(MUTED)))),
        ("midrun_onset", replace(
            base, chaos=mute_onset(muted_ids, onset=ONSET))),
        ("onset_recovery", replace(
            base, chaos=mute_onset(muted_ids, onset=ONSET,
                                   recovery=RECOVERY))),
    )


def run_regimes():
    rows = []
    for label, config in regime_configs():
        result = replicated(config)
        rows.append({
            "regime": label,
            "delivery": round(result.delivery_ratio, 4),
            "lat_mean": (round(result.mean_latency, 3)
                         if result.mean_latency is not None else None),
            "data_tx/bcast": round(
                result.data_transmissions_per_broadcast, 1),
            "chaos_events": result.chaos_events,
            "violations": result.invariant_violations,
        })
    return rows


def test_e13_midrun_mute(benchmark):
    rows = once(benchmark, run_regimes)
    emit("e13_midrun_mute",
         "E13: mid-run mute onset vs permanent mute (oracle on)", rows)
    by_regime = {row["regime"]: row for row in rows}
    # Safety: the oracle must stay silent in every regime.
    assert all(row["violations"] == 0 for row in rows)
    # The timelines actually fired.
    assert by_regime["midrun_onset"]["chaos_events"] == MUTED
    assert by_regime["onset_recovery"]["chaos_events"] == 2 * MUTED
    # Gossip-driven recovery holds delivery up in every mute regime.
    assert all(row["delivery"] >= 0.95 for row in rows)
