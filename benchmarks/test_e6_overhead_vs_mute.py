"""E6 — Message overhead vs number of mute overlay nodes.

Each recovery costs extra REQUEST/FIND/DATA packets, so overhead grows with
the fault level — but the total stays well below what flooding (the only
other fault-oblivious-delivery option at this fault level) pays for every
message everywhere.
"""

from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

N = 40
MUTE_COUNTS = (0, 4, 8)
WORKLOAD = dict(message_count=6, message_interval=1.5, warmup=8.0,
                drain=20.0)


def run_sweep():
    rows = []
    for mute in MUTE_COUNTS:
        scenario = ScenarioConfig(n=N, adversaries=AdversaryMix.mute(mute))
        result = replicated(ExperimentConfig(scenario=scenario, **WORKLOAD))
        recovery_tx = (result.physical.get("tx_request", 0)
                       + result.physical.get("tx_find_missing", 0))
        rows.append({
            "mute_nodes": mute,
            "data_tx/bcast": round(
                result.data_transmissions_per_broadcast, 1),
            "recovery_tx/bcast": round(recovery_tx / result.broadcasts, 1),
            "all_tx/bcast": round(result.transmissions_per_broadcast, 1),
            "bytes/bcast": round(result.bytes_per_broadcast),
            "delivery": round(result.delivery_ratio, 4),
        })
    return rows


def test_e6_overhead_vs_mute(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e6_overhead_vs_mute",
         f"E6: protocol overhead vs mute overlay nodes (n={N})", rows)
    base, worst = rows[0], rows[-1]
    # Recovery traffic appears once there are mute nodes.
    assert worst["recovery_tx/bcast"] > base["recovery_tx/bcast"]
    # Dissemination cost stays below flooding's n DATA packets per message
    # at every fault level.
    for row in rows:
        assert row["data_tx/bcast"] < N
        assert row["delivery"] >= 0.999
