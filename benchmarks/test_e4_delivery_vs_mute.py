"""E4 — Delivery ratio vs number of mute overlay nodes.

The paper's central robustness claim: mute failures "have the most adverse
impact on the protocol's performance", yet gossip-driven recovery keeps
delivery complete, while a bare overlay silently loses everything behind a
mute member.  Mute nodes are placed at the highest ids — exactly the nodes
the id-based election prefers — so they start *inside* the overlay.
"""

from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

N = 40
MUTE_COUNTS = (0, 2, 4, 8)
WORKLOAD = dict(message_count=6, message_interval=1.5, warmup=8.0,
                drain=20.0)


def run_sweep():
    rows = []
    for mute in MUTE_COUNTS:
        scenario = ScenarioConfig(n=N, adversaries=AdversaryMix.mute(mute))
        for protocol in ("byzcast", "overlay_only"):
            result = replicated(ExperimentConfig(
                scenario=scenario, protocol=protocol, **WORKLOAD))
            rows.append({
                "mute_nodes": mute,
                "protocol": protocol,
                "delivery": round(result.delivery_ratio, 4),
                "complete_msgs": round(result.complete_fraction, 3),
            })
    return rows


def test_e4_delivery_vs_mute(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e4_delivery_vs_mute",
         f"E4: delivery vs mute overlay nodes (n={N})", rows)
    by_key = {(r["mute_nodes"], r["protocol"]): r for r in rows}
    for mute in MUTE_COUNTS:
        byzcast = by_key[(mute, "byzcast")]["delivery"]
        overlay = by_key[(mute, "overlay_only")]["delivery"]
        # The protocol recovers everything at every fault level.
        assert byzcast >= 0.999, f"byzcast leaked at mute={mute}"
        assert byzcast >= overlay
    # The bare overlay visibly degrades at the highest fault level.
    assert (by_key[(max(MUTE_COUNTS), "overlay_only")]["delivery"]
            < by_key[(max(MUTE_COUNTS), "byzcast")]["delivery"])
