"""E9 — A verbose attacker with and without the VERBOSE failure detector.

A request-flooding node makes overlay nodes "react with messages of their
own, thereby degrading the performance of the system".  With the VERBOSE
detector the victims indict and then ignore the attacker; with the detector
effectively disabled (astronomical threshold) they keep serving forever.

Reported: DATA packets transmitted per attacker request — the reaction
amplification the detector suppresses.
"""

from dataclasses import replace

from repro.adversary.policies import RequestFloodAttacker
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.core.config import ProtocolConfig
from repro.core.node import NetworkNode, NodeStackConfig
from repro.des.kernel import Simulator
from repro.des.random import RandomStream, StreamFactory
from repro.fd.verbose import VerboseConfig
from repro.radio.geometry import Position
from repro.radio.medium import Medium

from common import emit, once

LINE = [(i * 80.0, 0.0) for i in range(5)]
ATTACKER = 4
ATTACK_SECONDS = 30.0
RATE_HZ = 8.0


def run_one(fd_enabled: bool):
    sim = Simulator()
    streams = StreamFactory(11)
    medium = Medium(sim, streams.stream("medium"))
    directory = KeyDirectory(HmacScheme(seed=b"e9"))
    verbose_config = (VerboseConfig() if fd_enabled
                      else VerboseConfig(suspicion_threshold=10_000_000))
    stack = NodeStackConfig(
        verbose=verbose_config,
        # Disable the protocol-level tolerance window so the comparison
        # isolates the VERBOSE detector itself.
        protocol=ProtocolConfig(request_indict_threshold=1))
    nodes = [NetworkNode(sim, medium, i, Position(*LINE[i]), 100.0,
                         streams, directory, stack)
             for i in range(len(LINE))]
    for node in nodes:
        node.start()
    sim.run(until=8.0)
    nodes[0].broadcast(b"bait message")
    sim.run(until=sim.now + 4.0)
    data_before = medium.stats.by_kind.get("data", 0)
    attacker = RequestFloodAttacker(sim, nodes[ATTACKER],
                                    streams.stream("attacker"),
                                    rate_hz=RATE_HZ)
    attacker.start()
    sim.run(until=sim.now + ATTACK_SECONDS)
    attacker.stop()
    data_during = medium.stats.by_kind.get("data", 0) - data_before
    suspected = any(n.verbose.suspected(ATTACKER) for n in nodes[:ATTACKER])
    return {
        "verbose_fd": "on" if fd_enabled else "off",
        "attacker_requests": attacker.requests_injected,
        "reaction_data_tx": data_during,
        "reactions_per_request": round(
            data_during / max(1, attacker.requests_injected), 3),
        "attacker_suspected": suspected,
    }


def run_comparison():
    return [run_one(fd_enabled=False), run_one(fd_enabled=True)]


def test_e9_verbose_attack(benchmark):
    rows = once(benchmark, run_comparison)
    emit("e9_verbose_attack",
         "E9: request-flooding attacker, VERBOSE FD off vs on", rows)
    off = next(r for r in rows if r["verbose_fd"] == "off")
    on = next(r for r in rows if r["verbose_fd"] == "on")
    # Without the detector, the network keeps reacting to the flood.
    assert off["reaction_data_tx"] > 3 * on["reaction_data_tx"]
    assert not off["attacker_suspected"]
    assert on["attacker_suspected"]
