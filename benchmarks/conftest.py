"""Benchmark-suite configuration."""

import sys
import os

# Make `common` importable when pytest is invoked from the repo root.
sys.path.insert(0, os.path.dirname(__file__))
