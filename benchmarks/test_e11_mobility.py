"""E11 — Delivery under mobility (extension experiment).

The paper's model is explicitly mobile ("due to mobility, the physical
structure of the network is constantly evolving") and its §3.5 analysis
has a dedicated mobile case, but the truncated results section leaves the
mobile evaluation unseen.  This extension experiment sweeps node speed
under random-waypoint mobility and compares the protocol (with §3.5-sized
mobile retention) against flooding.

Expected shape: flooding's one-shot dissemination misses receivers that
were momentarily shadowed or detached; the protocol's gossip keeps
re-offering messages, so delivery stays (near-)complete at walking and
vehicle speeds, at the price of recovery-tail latency.
"""

from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once, replicated

N = 40
SPEEDS = (0.0, 2.0, 6.0)   # static, pedestrian, vehicle (m/s)
WORKLOAD = dict(message_count=6, message_interval=1.5, warmup=8.0,
                drain=40.0)

# §3.5 mobile case: retention sized for roaming receivers.
MOBILE_STACK = NodeStackConfig(protocol=ProtocolConfig(
    gossip_advertise_ttl=25.0, purge_timeout=60.0))


def run_sweep():
    rows = []
    for speed in SPEEDS:
        scenario = ScenarioConfig(
            n=N, mobility="static" if speed == 0.0 else "waypoint",
            speed_max=max(speed, 0.1), target_degree=9.0)
        for protocol in ("byzcast", "flooding"):
            result = replicated(ExperimentConfig(
                scenario=scenario, protocol=protocol, stack=MOBILE_STACK,
                **WORKLOAD))
            rows.append({
                "speed_mps": speed,
                "protocol": protocol,
                "delivery": round(result.delivery_ratio, 4),
                "complete_msgs": round(result.complete_fraction, 3),
                "lat_mean_s": round(result.mean_latency, 4)
                if result.mean_latency is not None else None,
            })
    return rows


def test_e11_mobility(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e11_mobility",
         f"E11: delivery under random-waypoint mobility (n={N})", rows)
    by_key = {(r["speed_mps"], r["protocol"]): r for r in rows}
    for speed in SPEEDS:
        byzcast = by_key[(speed, "byzcast")]["delivery"]
        flooding = by_key[(speed, "flooding")]["delivery"]
        assert byzcast >= flooding - 1e-9
        assert byzcast >= 0.99
