"""Arena scorecard — every registered protocol through the E1–E4 subset.

One table, four evaluation axes per protocol, measured on identical
scenarios:

* **E1** failure-free overhead (non-HELLO transmissions per broadcast),
* **E2** failure-free delivery ratio,
* **E3** failure-free mean delivery latency,
* **E4** delivery with Byzantine-mute nodes (same mute count for every
  protocol, so rows are directly comparable — protocols whose declared
  tolerance is lower than the applied count are *expected* to shed
  delivery here; that is the trade the scorecard exists to show).

The committed ``benchmarks/results/arena_scorecard.md`` is the full-scale
output of this module; regenerate it with::

    PYTHONPATH=src python -m pytest benchmarks/test_arena_scorecard.py -q -s

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the world so CI can afford
the sweep; the smoke run exercises the same code paths but its table is
not the committed artifact.
"""

import os
from dataclasses import replace

import repro.arena as arena
from repro.chaos import OracleConfig
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.sweeps import average_results
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import RESULTS_DIR, emit, once

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N = 12 if SMOKE else 24
SEEDS = (3,) if SMOKE else (1, 2)
MESSAGES = 2 if SMOKE else 4
#: E4's fault injection, applied identically to every protocol.
MUTE_COUNT = 1 if SMOKE else 2

WORKLOAD = dict(warmup=6.0, message_count=MESSAGES,
                message_interval=1.0, drain=10.0)

SCORECARD_MD = os.path.join(RESULTS_DIR, "arena_scorecard.md")


def scorecard_config(protocol: str, seed: int,
                     mute: int = 0) -> ExperimentConfig:
    adversaries = AdversaryMix.mute(mute) if mute else AdversaryMix()
    return ExperimentConfig(
        scenario=ScenarioConfig(n=N, seed=seed, adversaries=adversaries),
        protocol=protocol, oracle=OracleConfig(), **WORKLOAD)


def averaged(protocol: str, mute: int = 0):
    return average_results([
        run_experiment(scorecard_config(protocol, seed, mute))
        for seed in SEEDS])


def run_scorecard():
    rows = []
    for protocol in arena.available_protocols():
        spec = arena.get_protocol(protocol)
        fault_free = averaged(protocol)
        muted = averaged(protocol, MUTE_COUNT)
        rows.append({
            "protocol": protocol,
            "tol": spec.mute_tolerance(N),
            "tx/bcast": round(fault_free.transmissions_per_broadcast, 1),
            "bytes/bcast": round(fault_free.bytes_per_broadcast),
            "delivery": round(fault_free.delivery_ratio, 4),
            "lat_mean": round(fault_free.mean_latency, 4),
            f"delivery@{MUTE_COUNT}mute": round(muted.delivery_ratio, 4),
            "violations": (fault_free.invariant_violations
                           + muted.invariant_violations),
        })
    return rows


def write_markdown(rows) -> None:
    headers = list(rows[0])
    lines = [
        "# Arena scorecard — cross-protocol E1–E4 subset",
        "",
        f"Scenario: n={N}, seeds={SEEDS}, {MESSAGES} broadcasts, "
        f"E4 column = {MUTE_COUNT} Byzantine-mute node(s) (high-id "
        "placement) for *every* protocol regardless of its declared "
        "tolerance (`tol`).",
        "",
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row[h]) for h in headers)
                     + " |")
    lines += [
        "",
        "Columns: `tx/bcast`, `bytes/bcast` — non-HELLO cost per "
        "broadcast (E1); `delivery`, `lat_mean` — failure-free (E2, "
        "E3); `delivery@…mute` — under mute faults (E4); `violations` "
        "— invariant-oracle findings across both runs (must be 0).",
        "",
    ]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(SCORECARD_MD, "w") as handle:
        handle.write("\n".join(lines))


def test_arena_scorecard(benchmark):
    rows = once(benchmark, run_scorecard)
    emit("arena_scorecard", "Arena: cross-protocol E1-E4 scorecard", rows)
    write_markdown(rows)

    by_protocol = {row["protocol"]: row for row in rows}
    assert set(by_protocol) == set(arena.available_protocols())

    for row in rows:
        # Safety is non-negotiable at any scale or fault load.
        assert row["violations"] == 0, row

    # Fault-free completeness at scale: exact for every protocol with a
    # recovery/quorum path.  The two one-shot designs are allowed their
    # documented losses — overlay_only has no recovery for collision
    # drops (the E2 story), and optflood's fixed counter threshold can
    # starve nodes behind sparse cuts (the broadcast-storm trade).
    for name in ("byzcast", "flooding", "multi_overlay", "dolev",
                 "maurer_tixeuil"):
        assert by_protocol[name]["delivery"] == 1.0, by_protocol[name]
    for name in ("overlay_only", "optflood"):
        assert by_protocol[name]["delivery"] >= 0.85, by_protocol[name]

    # The paper's stack holds full delivery at the E4 fault load; the
    # one-shot baselines are allowed to shed (that is their trade).
    assert by_protocol["byzcast"][f"delivery@{MUTE_COUNT}mute"] == 1.0
    assert by_protocol["flooding"][f"delivery@{MUTE_COUNT}mute"] == 1.0

    # Suppression must actually pay: optimized flooding spends fewer
    # transmissions per broadcast than plain flooding.
    assert by_protocol["optflood"]["tx/bcast"] < \
        by_protocol["flooding"]["tx/bcast"]
