"""A5 — The line-29 pseudo-code/proof discrepancy, demonstrated.

The paper's pseudo-code never REQUESTs a missing message from its
*originator* (Figure 3, line 29), but the Theorem 3.2 proof requires that
any holder l "if requested by its neighbors ... will also send m".  A node
whose only holding neighbor is the originator therefore deadlocks under
the literal rule.

Deterministic construction: line 0—1—2; node 1 loses the originator's
initial DATA transmission (modelled as one dropped reception — in reality
a collision).  Node 1's only neighbor holding the message is the
originator, so under the literal rule it never requests, and node 2 — who
can only be reached through node 1 — starves too.  With the proof-faithful
default both recover.

DESIGN.md documents the resolution (default: follow the proof).
"""

from typing import Any

from repro.core.config import ProtocolConfig
from repro.core.messages import DATA, DataMessage
from repro.core.node import NetworkNode, NodeStackConfig
from repro.core.protocol import NodeBehavior
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.radio.geometry import Position
from repro.radio.medium import Medium

from common import emit, once

LINE = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)]


class DropFirstData(NodeBehavior):
    """Simulates one unlucky collision: the first incoming DATA is lost."""

    def __init__(self) -> None:
        self._dropped = False

    def intercept_incoming(self, kind: str, message: Any,
                           link_sender: int) -> bool:
        if kind == DATA and isinstance(message, DataMessage) \
                and not self._dropped:
            self._dropped = True
            return True
        return False


def run_variant(request_from_originator: bool):
    sim = Simulator()
    streams = StreamFactory(3)
    medium = Medium(sim, streams.stream("medium"))
    directory = KeyDirectory(HmacScheme(seed=b"a5"))
    stack = NodeStackConfig(protocol=ProtocolConfig(
        request_from_originator=request_from_originator))
    nodes = [NetworkNode(sim, medium, i, Position(*LINE[i]), 100.0,
                         streams, directory, stack,
                         behavior=DropFirstData() if i == 1 else None)
             for i in range(3)]
    for node in nodes:
        node.start()
    sim.run(until=8.0)
    msg_id = nodes[0].broadcast(b"will node 1 ever see this?")
    sim.run(until=sim.now + 40.0)
    received = [any(rec[2] == msg_id for rec in node.accepted)
                for node in nodes]
    return {
        "variant": ("proof-faithful (default)" if request_from_originator
                    else "literal line 29"),
        "node1_received": received[1],
        "node2_received": received[2],
    }


def run_comparison():
    return [run_variant(False), run_variant(True)]


def test_a5_line29_discrepancy(benchmark):
    rows = once(benchmark, run_comparison)
    emit("a5_line29_discrepancy",
         "A5: line-29 originator-request rule (0—1—2 line, first DATA "
         "reception at node 1 lost)", rows)
    literal = next(r for r in rows if "literal" in r["variant"])
    fixed = next(r for r in rows if "default" in r["variant"])
    # The literal rule deadlocks both downstream nodes...
    assert not literal["node1_received"]
    assert not literal["node2_received"]
    # ...the proof-faithful rule recovers them.
    assert fixed["node1_received"]
    assert fixed["node2_received"]
