"""E1 — Failure-free message overhead vs network size.

Reconstructs the paper's headline comparison ("The use of an overlay
results in a significant reduction in the number of messages"): packets and
bytes per broadcast for the protocol vs flooding, overlay-only
dissemination, and f+1 node-independent overlays.

Qualitative claims this bench must reproduce:
* flooding costs ~n DATA transmissions per broadcast;
* the protocol's DATA cost tracks the (much smaller) overlay size;
* the f+1-overlays baseline pays roughly (f+1)× the single-overlay cost —
  more than the protocol even though both tolerate f faults.
"""

from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once, replicated

NS = (20, 40, 60)
WORKLOAD = dict(message_count=8, message_interval=1.0, warmup=8.0,
                drain=12.0)
ASSUMED_F = 3  # the f the multi-overlay baseline provisions for


def run_sweep():
    rows = []
    for n in NS:
        scenario = ScenarioConfig(n=n)
        for protocol in ("byzcast", "flooding", "overlay_only",
                         "multi_overlay"):
            result = replicated(ExperimentConfig(
                scenario=scenario, protocol=protocol,
                overlay_count=ASSUMED_F + 1, **WORKLOAD))
            rows.append({
                "n": n,
                "protocol": protocol,
                "data_tx/bcast": round(
                    result.data_transmissions_per_broadcast, 1),
                "all_tx/bcast": round(
                    result.transmissions_per_broadcast, 1),
                "bytes/bcast": round(result.bytes_per_broadcast),
                "delivery": round(result.delivery_ratio, 3),
            })
    return rows


def test_e1_overhead_vs_n(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e1_overhead_vs_n",
         "E1: failure-free overhead vs n (per broadcast)", rows)
    by_key = {(r["n"], r["protocol"]): r for r in rows}
    for n in NS:
        flooding = by_key[(n, "flooding")]["data_tx/bcast"]
        byzcast = by_key[(n, "byzcast")]["data_tx/bcast"]
        overlay = by_key[(n, "overlay_only")]["data_tx/bcast"]
        multi = by_key[(n, "multi_overlay")]["data_tx/bcast"]
        # Flooding sends one DATA per node.
        assert flooding >= 0.95 * n
        # The protocol's dissemination cost is far below flooding...
        assert byzcast < 0.8 * flooding
        # ...and in the same regime as a single overlay.
        assert byzcast < 2.5 * overlay
        # f+1 overlays cost a multiple of one overlay and exceed ours.
        assert multi > byzcast
