"""A2 — FIND_MISSING_MSG TTL: 2 (the paper's choice) vs 1.

"Searching a missing message can be initiated by limited flooding with
TTL=2, which ensures that the recovery request will reach beyond a single
Byzantine overlay node."  With TTL=1 the search dies at the first hop, so
under mute overlay nodes recovery leans entirely on direct gossip
neighbors — slower and, in sparse spots, lossier.
"""

from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

N = 30
WORKLOAD = dict(message_count=5, message_interval=2.0, warmup=8.0,
                drain=30.0)


def run_sweep():
    rows = []
    for ttl in (1, 2):
        protocol = ProtocolConfig(find_ttl=ttl)
        scenario = ScenarioConfig(n=N, adversaries=AdversaryMix.mute(6))
        result = replicated(ExperimentConfig(
            scenario=scenario, stack=NodeStackConfig(protocol=protocol),
            **WORKLOAD))
        rows.append({
            "find_ttl": ttl,
            "delivery": round(result.delivery_ratio, 4),
            "mean_completion_s": round(result.mean_completion_latency, 3)
            if result.mean_completion_latency is not None else None,
            "find_tx/bcast": round(
                result.physical.get("tx_find_missing", 0)
                / result.broadcasts, 2),
        })
    return rows


def test_a2_find_ttl(benchmark):
    rows = once(benchmark, run_sweep)
    emit("a2_find_ttl",
         f"A2: FIND_MISSING_MSG TTL (n={N}, 6 mute overlay nodes)", rows)
    ttl1 = next(r for r in rows if r["find_ttl"] == 1)
    ttl2 = next(r for r in rows if r["find_ttl"] == 2)
    # TTL=2 must never be worse on delivery, and the paper's protocol
    # (TTL=2) delivers everything.
    assert ttl2["delivery"] >= ttl1["delivery"]
    assert ttl2["delivery"] >= 0.999
