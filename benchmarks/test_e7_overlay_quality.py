"""E7 — Overlay quality: CDS vs MIS+B, with and without mute members.

Measures the two properties the correctness argument needs from the
overlay (Lemmas 3.5/3.9) — the correct members form a connected graph and
cover every correct node — plus the efficiency metric the paper optimizes
(overlay size as a fraction of n).
"""

from repro.core.node import NodeStackConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

NS = (30, 60)
MUTE_FRACTION = 0.2
WORKLOAD = dict(message_count=4, message_interval=1.5, warmup=10.0,
                drain=15.0)


def run_sweep():
    rows = []
    for n in NS:
        for rule in ("cds", "mis+b"):
            for mute in (0, int(MUTE_FRACTION * n)):
                scenario = ScenarioConfig(
                    n=n, adversaries=AdversaryMix.mute(mute))
                config = ExperimentConfig(
                    scenario=scenario,
                    stack=NodeStackConfig(overlay_rule=rule), **WORKLOAD)
                result = replicated(config)
                quality = result.overlay_quality
                rows.append({
                    "n": n,
                    "rule": rule,
                    "mute_nodes": mute,
                    "overlay_frac": round(quality.overlay_fraction, 3),
                    "coverage": round(quality.coverage, 3),
                    "connected": quality.correct_overlay_connected,
                    "delivery": round(result.delivery_ratio, 4),
                })
    return rows


def test_e7_overlay_quality(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e7_overlay_quality", "E7: overlay quality (CDS vs MIS+B)", rows)
    for row in rows:
        # The overlay is a sparse backbone, not the whole network.
        assert row["overlay_frac"] < 0.95
        # Coverage of correct nodes stays high even with mute members
        # (gossip recovery patches the remainder — delivery is the proof).
        assert row["delivery"] >= 0.99
    failure_free = [r for r in rows if r["mute_nodes"] == 0]
    for row in failure_free:
        assert row["coverage"] >= 0.95
    # CDS guarantees a connected backbone when failure-free; MIS+B's
    # distance-3 bridge election is heuristic at 2-hop locality and its
    # snapshot may momentarily miss a connector (delivery is unaffected —
    # asserted above), so connectivity is asserted for CDS only.
    for row in failure_free:
        if row["rule"] == "cds":
            assert row["connected"]
