"""E2 — Failure-free delivery ratio vs network size.

All Byzantine-free protocols should deliver nearly everything, but without
a recovery mechanism collision losses become permanent: overlay-only
dissemination degrades as density (and hence the collision rate) grows,
while the protocol's gossip/recovery path keeps delivery at 1.
"""

from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once, replicated

NS = (20, 40, 60)
WORKLOAD = dict(message_count=8, message_interval=1.0, warmup=8.0,
                drain=15.0)


def run_sweep():
    rows = []
    for n in NS:
        scenario = ScenarioConfig(n=n)
        for protocol in ("byzcast", "flooding", "overlay_only"):
            result = replicated(ExperimentConfig(
                scenario=scenario, protocol=protocol, **WORKLOAD))
            rows.append({
                "n": n,
                "protocol": protocol,
                "delivery": round(result.delivery_ratio, 4),
                "complete_msgs": round(result.complete_fraction, 3),
            })
    return rows


def test_e2_delivery_vs_n(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e2_delivery_vs_n", "E2: failure-free delivery ratio vs n", rows)
    by_key = {(r["n"], r["protocol"]): r for r in rows}
    for n in NS:
        byzcast = by_key[(n, "byzcast")]["delivery"]
        overlay = by_key[(n, "overlay_only")]["delivery"]
        # Recovery closes every gap.
        assert byzcast >= 0.999
        # A bare overlay leaks messages to collisions.
        assert byzcast >= overlay
    # And the leak worsens with scale for the bare overlay.
    assert (by_key[(60, "overlay_only")]["delivery"]
            < by_key[(20, "overlay_only")]["delivery"] + 0.01)
