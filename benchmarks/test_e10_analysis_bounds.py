"""E10 — Empirical validation of the §3.5 analysis.

Two quantities on the worst-case (line) topology the analysis reasons
about:

* **Dissemination time** (Theorem 3.4): every correct node receives a
  message within ``max_timeout · (n−1)`` — we report the measured
  completion time and its ratio to the bound (the bound should be loose);
* **Buffer size**: a static node buffers at most ``retention · δ``
  messages at injection rate δ.
"""

from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.core.node import NetworkNode
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.metrics.collector import MetricsCollector
from repro.radio.geometry import Position
from repro.radio.medium import Medium

from common import emit, once

NS = (6, 10, 14)
SPACING = 80.0


def run_line(n):
    sim = Simulator()
    streams = StreamFactory(5)
    medium = Medium(sim, streams.stream("medium"))
    directory = KeyDirectory(HmacScheme(seed=b"e10"))
    stack = NodeStackConfig()
    nodes = [NetworkNode(sim, medium, i, Position(i * SPACING, 0.0), 100.0,
                         streams, directory, stack)
             for i in range(n)]
    collector = MetricsCollector({node.node_id for node in nodes})
    listener = collector.listener(sim)
    for node in nodes:
        node.add_accept_listener(listener)
        node.start()
    sim.run(until=10.0)
    for i in range(3):
        msg_id = nodes[0].broadcast(f"bound probe {i}".encode())
        collector.on_broadcast(msg_id, sim.now)
        sim.run(until=sim.now + 2.0)
    sim.run(until=sim.now + 60.0)
    completions = collector.completion_latencies()
    max_buffer = max(node.protocol.stats.max_buffer for node in nodes)
    return completions, max_buffer, stack.protocol


def run_sweep():
    rows = []
    for n in NS:
        completions, max_buffer, config = run_line(n)
        bound = config.max_timeout() * (n - 1)
        worst = max(completions) if completions else None
        rows.append({
            "n": n,
            "messages_complete": len(completions),
            "worst_completion_s": round(worst, 3) if worst else None,
            "bound_s": round(bound, 2),
            "ratio": round(worst / bound, 3) if worst else None,
            "max_buffer_msgs": max_buffer,
        })
    return rows


def test_e10_analysis_bounds(benchmark):
    rows = once(benchmark, run_sweep)
    emit("e10_analysis_bounds",
         "E10: dissemination-time bound (Theorem 3.4) on line topologies",
         rows)
    for row in rows:
        assert row["messages_complete"] == 3
        # Theorem 3.4 holds, with slack (the bound is a worst case).
        assert row["ratio"] is not None and row["ratio"] <= 1.0
        # Buffering stays near the live message count (3 + gossip window).
        assert row["max_buffer_msgs"] <= 3
