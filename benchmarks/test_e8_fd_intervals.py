"""E8 — Interval failure-detector effectiveness (I_mute semantics, §2.2).

Measures, on a diamond topology with a mute overlay node:

* **Interval local completeness** (Lemma 3.7): a node that is mute during a
  mute interval gets suspected by some correct neighbor within a bounded
  suspicion interval;
* **Interval strong accuracy** (Lemma 3.8): correct nodes accumulate no
  lasting suspicion during timely periods;
* **recovery**: once the fault clears (the detector's aging), the
  suspicion decays — the interval, not forever, semantics.
"""

from repro.adversary.behaviors import MuteBehavior
from repro.crypto.keystore import HmacScheme, KeyDirectory
from repro.core.node import NetworkNode, NodeStackConfig
from repro.des.kernel import Simulator
from repro.des.random import StreamFactory
from repro.radio.geometry import Position
from repro.radio.medium import Medium

from common import emit, once

DIAMOND = [(0.0, 0.0), (80.0, 30.0), (80.0, -30.0), (160.0, 0.0)]


def build(behaviors=None):
    sim = Simulator()
    streams = StreamFactory(7)
    medium = Medium(sim, streams.stream("medium"))
    directory = KeyDirectory(HmacScheme(seed=b"e8"))
    behaviors = behaviors or {}
    nodes = [NetworkNode(sim, medium, i, Position(*DIAMOND[i]), 100.0,
                         streams, directory, NodeStackConfig(),
                         behavior=behaviors.get(i))
             for i in range(len(DIAMOND))]
    for node in nodes:
        node.start()
    return sim, nodes


def run_measurement():
    rows = []

    # --- completeness: node 2 (the elected overlay arm) goes mute --------
    sim, nodes = build({2: MuteBehavior()})
    sim.run(until=8.0)
    first_strike, first_suspicion = None, None
    probes = 10
    for i in range(probes):
        nodes[0].broadcast(f"probe {i}".encode())
        sim.run(until=sim.now + 3.0)
        strikes = max(n.mute.suspicion_count(2) for n in nodes
                      if n.node_id != 2)
        if strikes > 0 and first_strike is None:
            first_strike = sim.now - 8.0
        if any(n.mute.suspected(2) for n in nodes if n.node_id != 2) \
                and first_suspicion is None:
            first_suspicion = sim.now - 8.0
    rows.append({
        "property": "completeness: time to first strike (s)",
        "value": round(first_strike, 2) if first_strike else None,
    })
    rows.append({
        "property": "completeness: time to suspicion (s)",
        "value": round(first_suspicion, 2) if first_suspicion else None,
    })

    # --- accuracy: failure-free run, correct nodes stay unsuspected ------
    sim2, nodes2 = build()
    sim2.run(until=8.0)
    for i in range(probes):
        nodes2[0].broadcast(f"probe {i}".encode())
        sim2.run(until=sim2.now + 3.0)
    wrongly_suspected = sum(
        1 for observer in nodes2 for target in nodes2
        if observer is not target
        and observer.mute.suspected(target.node_id))
    rows.append({"property": "accuracy: wrongly suspected (count)",
                 "value": wrongly_suspected})

    # --- interval semantics: suspicion decays after the quiet period -----
    still_suspected = sum(
        1 for n in nodes if n.node_id != 2 and n.mute.suspected(2))
    sim.run(until=sim.now + 60.0)  # no further traffic: aging runs dry
    decayed = sum(1 for n in nodes if n.node_id != 2
                  and not n.mute.suspected(2))
    rows.append({"property": "interval: suspected at fault time (count)",
                 "value": still_suspected})
    rows.append({"property": "interval: rehabilitated after quiet (count)",
                 "value": decayed})
    return rows


def test_e8_fd_intervals(benchmark):
    rows = once(benchmark, run_measurement)
    emit("e8_fd_intervals", "E8: MUTE interval failure detector", rows)
    values = {r["property"]: r["value"] for r in rows}
    assert values["completeness: time to suspicion (s)"] is not None
    assert values["completeness: time to suspicion (s)"] < 30.0
    assert values["accuracy: wrongly suspected (count)"] == 0
    assert values["interval: rehabilitated after quiet (count)"] == 3
