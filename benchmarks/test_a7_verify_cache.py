"""A7 — Verified-signature cache: hit rate and per-receive crypto cost.

An E1-style failure-free run re-verifies the same gossip entries every
gossip period; with real DSA that re-verification dominates the per-node
cost (benchmark A4).  This benchmark runs the same scenario with the
hot-path caches on (the default) and off, under both signature schemes,
and measures — via the in-simulator profiler, not wall clock — how many
full verifications the cache eliminates and what that does to total
verification cost.

Hellos are unsigned here: every (sender, seq) beacon is a fresh tuple
with zero re-verification potential (which is why the node wires its
cache into the protocol only), so signed hellos would only add a
constant uncacheable term to both sides.

Acceptance (ISSUE PR3): on the DSA run the caches must cut the number
of full verifications — hence total verification cost — by >= 5x, while
the campaign records of the cached and uncached runs are identical up
to the config block, with zero invariant-oracle violations.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` shrinks the scenario so CI can run
the benchmark in seconds; the byte-identity and zero-violation checks
still run, the 5x floor is asserted only at full scale.
"""

import json
import os

from repro.chaos import OracleConfig
from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.sim.campaign import result_to_record
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N = 10 if SMOKE else 20
MESSAGES = 2 if SMOKE else 5
SEED = 1


def a7_config(scheme: str, caches_on: bool, profile: bool):
    protocol = ProtocolConfig(
        verify_cache_size=1024 if caches_on else 0,
        wire_cache=caches_on)
    return ExperimentConfig(
        scenario=ScenarioConfig(n=N, seed=SEED),
        stack=NodeStackConfig(protocol=protocol, sign_hellos=False),
        oracle=OracleConfig(),
        signature_scheme=scheme, profile=profile,
        warmup=6.0, message_count=MESSAGES, message_interval=1.5,
        drain=10.0)


def measure(scheme: str, caches_on: bool):
    result = run_experiment(a7_config(scheme, caches_on, profile=True))
    assert result.invariant_violations == 0
    prof = result.profile
    full = prof.get("crypto.verify", {"count": 0, "seconds": 0.0})
    hits = prof.get("crypto.verify_hit", {"count": 0})
    requests = full["count"] + hits["count"]
    return {
        "scheme": scheme,
        "caches": "on" if caches_on else "off",
        "verifies": requests,
        "full": full["count"],
        "hit_rate": round(hits["count"] / requests, 3) if requests else 0.0,
        "verify_ms": round(full["seconds"] * 1e3, 1),
        "per_verify_us": (round(full["seconds"] / requests * 1e6, 1)
                          if requests else 0.0),
        "delivery": round(result.delivery_ratio, 4),
    }


def records_identical_modulo_config(scheme: str) -> bool:
    """Cached and uncached runs persist the same campaign record (the
    config block and its hash necessarily differ — they name the knobs)."""
    def stripped(caches_on):
        config = a7_config(scheme, caches_on, profile=False)
        record = result_to_record(config, run_experiment(config))
        assert record["invariant_violations"] == 0
        record.pop("key")
        record.pop("config")
        record.pop("runtime", None)   # wall-clock block, never identical
        return json.dumps(record, sort_keys=True)
    return stripped(True) == stripped(False)


def run_comparison():
    rows = []
    for scheme in ("dsa", "hmac"):
        for caches_on in (True, False):
            rows.append(measure(scheme, caches_on))
    return rows


def test_a7_verify_cache(benchmark):
    rows = once(benchmark, run_comparison)
    emit("a7_verify_cache",
         f"A7 verified-signature cache (n={N}, {MESSAGES} msgs, "
         "E1-style failure-free, unsigned hellos)",
         rows)
    by_key = {(row["scheme"], row["caches"]): row for row in rows}

    for scheme in ("dsa", "hmac"):
        on, off = by_key[(scheme, "on")], by_key[(scheme, "off")]
        # Same verification demand either way; the cache only changes
        # how many are computed in full.
        assert on["verifies"] == off["verifies"]
        assert off["hit_rate"] == 0.0
        assert on["full"] < off["full"]
        assert on["hit_rate"] > 0.5
        # Pure memoization: delivery is untouched.
        assert on["delivery"] == off["delivery"]
        # The full record equivalence (beyond the delivery spot check).
        assert records_identical_modulo_config(scheme)

    if not SMOKE:
        # Acceptance: >= 5x fewer full verifications on the DSA run.
        # Counts are deterministic, and DSA's per-verification cost is
        # cache-independent, so this is the >= 5x total-cost reduction.
        dsa_on, dsa_off = by_key[("dsa", "on")], by_key[("dsa", "off")]
        assert dsa_off["full"] / dsa_on["full"] >= 5.0
