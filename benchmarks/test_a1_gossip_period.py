"""A1 — Gossip period vs recovery latency/overhead trade-off.

The ``gossip_timeout`` term dominates §3.5's ``max_timeout``: halving the
gossip period roughly halves the recovery latency but multiplies the gossip
packet rate.  Run with mute overlay nodes so the recovery path is the one
being measured.
"""

from dataclasses import replace

from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

N = 30
PERIODS = (0.5, 1.0, 2.0, 4.0)
WORKLOAD = dict(message_count=5, message_interval=2.0, warmup=8.0,
                drain=30.0)


def run_sweep():
    rows = []
    for period in PERIODS:
        protocol = ProtocolConfig(gossip_period=period,
                                  gossip_advertise_ttl=6 * period)
        scenario = ScenarioConfig(n=N, adversaries=AdversaryMix.mute(5))
        result = replicated(ExperimentConfig(
            scenario=scenario, stack=NodeStackConfig(protocol=protocol),
            **WORKLOAD))
        rows.append({
            "gossip_period_s": period,
            "delivery": round(result.delivery_ratio, 4),
            "mean_completion_s": round(result.mean_completion_latency, 3)
            if result.mean_completion_latency is not None else None,
            "gossip_tx/bcast": round(
                result.physical.get("tx_gossip", 0) / result.broadcasts, 1),
        })
    return rows


def test_a1_gossip_period(benchmark):
    rows = once(benchmark, run_sweep)
    emit("a1_gossip_period",
         f"A1: gossip period trade-off (n={N}, 5 mute overlay nodes)", rows)
    # Slower gossip → fewer gossip packets...
    gossip_costs = [r["gossip_tx/bcast"] for r in rows]
    assert gossip_costs[0] > gossip_costs[-1]
    # ...but slower recovery at the slowest setting vs the fastest.
    fast = rows[0]["mean_completion_s"]
    slow = rows[-1]["mean_completion_s"]
    assert slow > fast
    for row in rows:
        assert row["delivery"] >= 0.99
