"""E12 — Scale and energy (extension experiment).

Two questions the paper's motivation raises but the truncated results
can't answer:

* does the protocol hold up at the **hundred-node scale** ad-hoc
  deployments imply?  (single n=100 run, full fault mix);
* what does dissemination **cost in joules** — the battery currency that
  motivates selfish behaviour — compared to flooding?

Energy uses the WaveLAN-style linear airtime model of
:mod:`repro.radio.energy`.
"""

from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import AdversaryMix, ScenarioConfig

from common import emit, once, replicated

WORKLOAD = dict(message_count=5, message_interval=1.5, warmup=10.0,
                drain=20.0)


def run_measurement():
    rows = []
    # --- scale: n=100 with 10% mute nodes -------------------------------
    scenario = ScenarioConfig(n=100, adversaries=AdversaryMix.mute(10),
                              target_degree=9.0)
    result = replicated(ExperimentConfig(scenario=scenario, **WORKLOAD),
                        seeds=(1,))
    rows.append({
        "experiment": "scale n=100, 10 mute",
        "protocol": "byzcast",
        "delivery": round(result.delivery_ratio, 4),
        "tx/bcast": round(result.transmissions_per_broadcast, 1),
        "J_total": round(result.energy["tx_joules"]
                         + result.energy["rx_joules"], 2),
        "J_hottest_node": round(result.energy["max_node_joules"], 3),
    })
    # --- energy: byzcast vs flooding at n=40 -----------------------------
    scenario = ScenarioConfig(n=40)
    for protocol in ("byzcast", "flooding"):
        result = replicated(ExperimentConfig(
            scenario=scenario, protocol=protocol, **WORKLOAD))
        rows.append({
            "experiment": "energy n=40, fault-free",
            "protocol": protocol,
            "delivery": round(result.delivery_ratio, 4),
            "tx/bcast": round(result.transmissions_per_broadcast, 1),
            "J_total": round(result.energy["tx_joules"]
                             + result.energy["rx_joules"], 2),
            "J_hottest_node": round(result.energy["max_node_joules"], 3),
        })
    return rows


def test_e12_scale_energy(benchmark):
    rows = once(benchmark, run_measurement)
    emit("e12_scale_energy", "E12: hundred-node scale and energy cost",
         rows)
    scale = rows[0]
    assert scale["delivery"] >= 0.999  # full delivery at n=100, 10 mute
    byzcast = next(r for r in rows if r["experiment"].startswith("energy")
                   and r["protocol"] == "byzcast")
    flooding = next(r for r in rows if r["protocol"] == "flooding")
    # The hottest node (the busiest relay) matters for battery fairness:
    # neither protocol may burn an order of magnitude more than the other.
    assert byzcast["J_hottest_node"] < 10 * flooding["J_hottest_node"]
    assert byzcast["delivery"] >= flooding["delivery"]
