"""A3 — Gossip aggregation and piggybacking.

"As gossips are sent periodically, multiple gossip messages are aggregated
into one packet, thereby greatly reducing the number of messages generated
by the protocol."  Compares packet counts with aggregation disabled
(one entry per packet), enabled, and additionally with footnote-5
piggybacking of the first gossip on the DATA packet.
"""

from repro.core.config import ProtocolConfig
from repro.core.node import NodeStackConfig
from repro.sim.experiment import ExperimentConfig
from repro.workloads.scenarios import ScenarioConfig

from common import emit, once, replicated

N = 30
WORKLOAD = dict(message_count=10, message_interval=0.5, warmup=8.0,
                drain=12.0)

VARIANTS = (
    ("no aggregation", ProtocolConfig(gossip_aggregation_limit=1,
                                      piggyback_gossip=False)),
    ("aggregated", ProtocolConfig(piggyback_gossip=False)),
    ("aggregated + piggyback", ProtocolConfig()),
)


def run_sweep():
    rows = []
    for label, protocol in VARIANTS:
        scenario = ScenarioConfig(n=N)
        result = replicated(ExperimentConfig(
            scenario=scenario, stack=NodeStackConfig(protocol=protocol),
            **WORKLOAD))
        rows.append({
            "variant": label,
            "gossip_tx/bcast": round(
                result.physical.get("tx_gossip", 0) / result.broadcasts, 1),
            "gossip_bytes/bcast": round(
                result.physical.get("bytes_gossip", 0) / result.broadcasts),
            "delivery": round(result.delivery_ratio, 4),
        })
    return rows


def test_a3_gossip_aggregation(benchmark):
    rows = once(benchmark, run_sweep)
    emit("a3_gossip_aggregation",
         f"A3: gossip aggregation and piggybacking (n={N}, 10 msgs)", rows)
    by_variant = {r["variant"]: r for r in rows}
    # Aggregation greatly reduces the gossip packet count...
    assert (by_variant["aggregated"]["gossip_tx/bcast"]
            < 0.7 * by_variant["no aggregation"]["gossip_tx/bcast"])
    # ...and the un-aggregated packet storm costs delivery via collisions.
    assert (by_variant["aggregated"]["delivery"]
            >= by_variant["no aggregation"]["delivery"])
    assert by_variant["aggregated"]["delivery"] >= 0.99
    assert by_variant["aggregated + piggyback"]["delivery"] >= 0.99
