"""Medium-scaling micro-benchmark: brute scan vs spatial grid vs numpy.

Isolates the physical layer: n radios uniformly placed, a fixed batch of
transmissions resolved to completion, timed on each backend.  Two
regimes:

* **Constant degree** (the sweep benchmarks' regime): the field grows
  with n so mean degree stays ~8.  Here the grid's cell query already
  makes per-completion work O(degree), so the grid dominates the brute
  scan (>= 3x at n=500) and the vectorized medium matches the grid.
* **Fixed field** (the paper's own SWANS setting, and E12's): the field
  is frozen at the n=100 / degree-9 size while n grows, so density —
  and with it the per-completion candidate count — grows linearly.
  This is where mask arithmetic beats the scalar per-candidate walk:
  the vectorized medium must be >= 5x faster than the grid at n=2000.

Every timed pair also asserts identical ``MediumStats`` — the backends
are pinned bit-for-bit equivalent (tests/test_medium_grid_equivalence.py
and tests/test_vectorized_medium.py), so a stats mismatch here means the
benchmark is timing different physics.  The before/after record lands in
``benchmarks/results/``.
"""

import random
import time

from repro.des.kernel import Simulator
from repro.des.random import RandomStream
from repro.radio.geometry import Position
from repro.radio.medium import Medium
from repro.radio.packet import Packet
from repro.radio.propagation import UnitDisk
from repro.radio.vectorized import VectorizedMedium
from repro.workloads.scenarios import area_side_for_degree

from common import emit, once

NS = (100, 250, 500)
DENSE_NS = (500, 1000, 2000)
TX_RANGE = 100.0
TARGET_DEGREE = 8.0
#: Fixed-field regime: the n=100 / degree-9 field of E12, frozen while
#: n grows (degree ~9 at n=100 -> ~180 at n=2000).
DENSE_SIDE = area_side_for_degree(100, TX_RANGE, 9.0)
TRANSMISSIONS = 400

MEDIUM_KINDS = {
    "grid": lambda sim, rng: Medium(sim, rng, UnitDisk(), use_grid=True),
    "brute": lambda sim, rng: Medium(sim, rng, UnitDisk(), use_grid=False),
    "vectorized": lambda sim, rng: VectorizedMedium(sim, rng, UnitDisk()),
}


def run_physics(n, kind, seed=1, side=None, gap=0.01):
    """Resolve a fixed transmission batch; return (seconds, stats).

    ``kind`` is a :data:`MEDIUM_KINDS` key (bools select grid/brute for
    backwards compatibility).  ``side`` overrides the constant-degree
    field size; ``gap`` is the max inter-transmission spacing.
    """
    if kind is True:
        kind = "grid"
    elif kind is False:
        kind = "brute"
    rng = random.Random(seed)
    if side is None:
        side = area_side_for_degree(n, TX_RANGE, TARGET_DEGREE)
    sim = Simulator()
    medium = MEDIUM_KINDS[kind](sim, RandomStream(seed))
    positions = [Position(rng.uniform(0, side), rng.uniform(0, side))
                 for _ in range(n)]
    for i in range(n):
        medium.attach(i, (lambda i=i: positions[i]), TX_RANGE,
                      lambda packet: None)
    t = 0.0
    for _ in range(TRANSMISSIONS):
        t += rng.uniform(0.0, gap)
        sim.schedule_at(t, medium.transmit, rng.randrange(n),
                        Packet(sender=0, payload=None, size_bytes=125,
                               kind="data"))
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, medium.stats


def _best_of(runs, n, kind, **kwargs):
    """Best wall time over ``runs`` repeats (stats from the last run —
    they are identical every time by construction)."""
    best, stats = run_physics(n, kind, **kwargs)
    for _ in range(runs - 1):
        seconds, stats = run_physics(n, kind, **kwargs)
        best = min(best, seconds)
    return best, stats


def run_comparison():
    rows = []
    for n in NS:
        grid_s, grid_stats = run_physics(n, "grid")
        brute_s, brute_stats = run_physics(n, "brute")
        vec_s, vec_stats = run_physics(n, "vectorized")
        # Same physics, bit for bit.
        assert grid_stats == brute_stats == vec_stats
        rows.append({
            "n": n,
            "grid_ms": round(grid_s * 1e3, 1),
            "scan_ms": round(brute_s * 1e3, 1),
            "vec_ms": round(vec_s * 1e3, 1),
            "speedup": round(brute_s / grid_s, 2),
            "vec_speedup": round(brute_s / vec_s, 2),
            "deliveries": grid_stats.deliveries,
            "collisions": grid_stats.collisions,
        })
    return rows


def run_dense_comparison():
    rows = []
    for n in DENSE_NS:
        runs = 2 if n >= 2000 else 1
        grid_s, grid_stats = _best_of(runs, n, "grid", side=DENSE_SIDE)
        vec_s, vec_stats = _best_of(runs, n, "vectorized",
                                    side=DENSE_SIDE)
        assert grid_stats == vec_stats  # same physics, bit for bit
        degree = 3.14159 * TX_RANGE ** 2 * n / DENSE_SIDE ** 2
        rows.append({
            "n": n,
            "degree": round(degree, 1),
            "grid_ms": round(grid_s * 1e3, 1),
            "vec_ms": round(vec_s * 1e3, 1),
            "speedup": round(grid_s / vec_s, 2),
            "deliveries": grid_stats.deliveries,
            "collisions": grid_stats.collisions,
        })
    return rows


def test_medium_scaling(benchmark):
    rows = once(benchmark, run_comparison)
    emit("medium_scaling",
         "Medium scaling: brute scan vs grid vs vectorized "
         f"({TRANSMISSIONS} transmissions, degree {TARGET_DEGREE:.0f})",
         rows)
    by_n = {row["n"]: row for row in rows}
    # Acceptance: >= 3x at n=500 over the seed's O(n) scan.
    assert by_n[500]["speedup"] >= 3.0
    # The win must grow with n (that's the whole point of the index).
    assert by_n[500]["speedup"] > by_n[100]["speedup"]
    # At constant degree the vectorized medium must at least keep pace
    # with the scan; its own regime is the dense benchmark below.
    assert by_n[500]["vec_speedup"] >= 1.0


def test_medium_scaling_dense(benchmark):
    rows = once(benchmark, run_dense_comparison)
    emit("medium_scaling_dense",
         "Medium scaling, fixed field (paper regime): grid vs vectorized "
         f"({TRANSMISSIONS} transmissions, side {DENSE_SIDE:.0f}m)",
         rows)
    by_n = {row["n"]: row for row in rows}
    # Acceptance: >= 5x at n=2000 in the paper's fixed-field regime.
    assert by_n[2000]["speedup"] >= 5.0
    # The win must grow with density.
    assert by_n[2000]["speedup"] > by_n[500]["speedup"]
