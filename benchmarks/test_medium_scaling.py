"""Medium-scaling micro-benchmark: spatial grid vs all-radios scan.

Isolates the physical layer: n radios uniformly placed at paper density,
a fixed batch of transmissions resolved to completion, timed with the
grid index on (the default) and off (the seed's brute-force scan).  The
grid must deliver >= 3x at n=500 while producing identical MediumStats —
the before/after record lands in ``benchmarks/results/``.
"""

import random
import time

from repro.des.kernel import Simulator
from repro.des.random import RandomStream
from repro.radio.geometry import Position
from repro.radio.medium import Medium
from repro.radio.packet import Packet
from repro.radio.propagation import UnitDisk
from repro.workloads.scenarios import area_side_for_degree

from common import emit, once

NS = (100, 250, 500)
TX_RANGE = 100.0
TARGET_DEGREE = 8.0
TRANSMISSIONS = 400


def run_physics(n, use_grid, seed=1):
    """Resolve a fixed transmission batch; return (seconds, stats)."""
    rng = random.Random(seed)
    side = area_side_for_degree(n, TX_RANGE, TARGET_DEGREE)
    sim = Simulator()
    medium = Medium(sim, RandomStream(seed), UnitDisk(),
                    use_grid=use_grid)
    positions = [Position(rng.uniform(0, side), rng.uniform(0, side))
                 for _ in range(n)]
    for i in range(n):
        medium.attach(i, (lambda i=i: positions[i]), TX_RANGE,
                      lambda packet: None)
    t = 0.0
    for _ in range(TRANSMISSIONS):
        t += rng.uniform(0.0, 0.01)
        sim.schedule_at(t, medium.transmit, rng.randrange(n),
                        Packet(sender=0, payload=None, size_bytes=125,
                               kind="data"))
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, medium.stats


def run_comparison():
    rows = []
    for n in NS:
        grid_s, grid_stats = run_physics(n, use_grid=True)
        brute_s, brute_stats = run_physics(n, use_grid=False)
        assert grid_stats == brute_stats  # same physics, bit for bit
        rows.append({
            "n": n,
            "grid_ms": round(grid_s * 1e3, 1),
            "scan_ms": round(brute_s * 1e3, 1),
            "speedup": round(brute_s / grid_s, 2),
            "deliveries": grid_stats.deliveries,
            "collisions": grid_stats.collisions,
        })
    return rows


def test_medium_scaling(benchmark):
    rows = once(benchmark, run_comparison)
    emit("medium_scaling",
         "Medium scaling: spatial grid vs all-radios scan "
         f"({TRANSMISSIONS} transmissions, degree {TARGET_DEGREE:.0f})",
         rows)
    by_n = {row["n"]: row for row in rows}
    # Acceptance: >= 3x at n=500 over the seed's O(n) scan.
    assert by_n[500]["speedup"] >= 3.0
    # The win must grow with n (that's the whole point of the index).
    assert by_n[500]["speedup"] > by_n[100]["speedup"]
